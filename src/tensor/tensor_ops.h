#ifndef ODF_TENSOR_TENSOR_OPS_H_
#define ODF_TENSOR_TENSOR_OPS_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

// Fused multiply-add pinned to the build's scalar contraction policy. On
// targets with hardware FMA, `-ffp-contract` fuses scalar `a*b + c` into one
// rounding — but GCC's vectorizer does not always carry that fusion into
// hand-tiled loops, silently splitting them into mul+add and breaking bit-
// equality against the scalar kernels. This macro forces the fused form
// where scalar code fuses and the split form where it cannot, so "identical
// per-element accumulation order" implies bit-identical results across
// every kernel in a build.
// The macro is width-generic: overload resolution picks the float or double
// fused form, so the scalar-templated kernels below pin the identical
// contraction policy at both precisions.
#if defined(__FMA__) || defined(__ARM_FEATURE_FMA)
namespace odf::fp_detail {
inline float Fmadd(float a, float b, float c) {
  return __builtin_fmaf(a, b, c);
}
inline double Fmadd(double a, double b, double c) {
  return __builtin_fma(a, b, c);
}
}  // namespace odf::fp_detail
#define ODF_FMADD(a, b, c) (::odf::fp_detail::Fmadd((a), (b), (c)))
#else
#define ODF_FMADD(a, b, c) ((a) * (b) + (c))
#endif

namespace odf {

// Pure tensor kernels. These operate on values only; the autograd layer
// (src/autograd) builds differentiable graph nodes on top of them.

// -- Broadcasting -------------------------------------------------------

/// Returns the numpy-style broadcast shape of `a` and `b`; aborts if the
/// shapes are incompatible.
Shape BroadcastShape(const Shape& a, const Shape& b);

/// True when `from` can be broadcast to `to`.
bool IsBroadcastableTo(const Shape& from, const Shape& to);

/// Sums `t` over its broadcast dimensions so the result has shape `target`
/// (the adjoint of broadcasting; used by autograd backward passes).
Tensor ReduceToShape(const Tensor& t, const Shape& target);

// -- Elementwise binary (with broadcasting) ------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);

// -- Scalar ops ----------------------------------------------------------

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

// -- Elementwise unary ----------------------------------------------------

Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; inputs must be positive (use AddScalar for smoothing).
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Abs(const Tensor& a);
/// Clamps every element into [lo, hi].
Tensor Clamp(const Tensor& a, float lo, float hi);
/// Applies an arbitrary scalar function elementwise (test/utility use).
Tensor Map(const Tensor& a, const std::function<float(float)>& fn);

// -- Matrix products ------------------------------------------------------

/// 2-D matrix product: [m,k] x [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Batched matrix product with leading-batch broadcasting:
/// [B,m,k] x [B,k,n] -> [B,m,n]; either side may be rank-2 and is broadcast
/// across the batch.
Tensor BatchMatMul(const Tensor& a, const Tensor& b);

// -- Layout ---------------------------------------------------------------

/// Transposes a rank-2 tensor.
Tensor Transpose2D(const Tensor& a);

/// Swaps the last two dimensions of a rank>=2 tensor.
Tensor TransposeLast2(const Tensor& a);

/// General permutation of axes; `perm` must be a permutation of 0..rank-1.
Tensor Permute(const Tensor& a, const std::vector<int64_t>& perm);

/// Concatenates tensors along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);

/// Extracts `len` indices starting at `start` along `axis`.
Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t len);

// -- Reductions -----------------------------------------------------------

/// Sum over all elements, returned as a shape-{1} tensor.
Tensor SumAll(const Tensor& a);
/// Mean over all elements, returned as a shape-{1} tensor.
Tensor MeanAll(const Tensor& a);
/// Sum along one axis; `keepdim` keeps the reduced axis with size 1.
Tensor Sum(const Tensor& a, int64_t axis, bool keepdim);
/// Mean along one axis.
Tensor Mean(const Tensor& a, int64_t axis, bool keepdim);
/// Largest element (value only).
float MaxValue(const Tensor& a);
/// Smallest element (value only).
float MinValue(const Tensor& a);

// -- Neural-net helpers -----------------------------------------------------

/// Softmax along the last axis.
Tensor SoftmaxLastDim(const Tensor& a);

/// Squared Frobenius norm (sum of squares) as a float.
float SquaredNorm(const Tensor& a);

/// True when shapes match and elements differ by at most `atol`.
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f);

// -- Preallocated-output variants ----------------------------------------
//
// Each `FooInto` writes Foo's result into `*out`, which must already hold
// the exact result shape; the kernel allocates no output storage (internal
// scratch such as GEMM packing buffers may still allocate). The allocating
// entry points above delegate to these, so the loop bodies — and therefore
// the floating-point results — are identical on both paths. Unary, scalar
// and same-shape binary kernels may alias `out` with an input (reads are
// element-aligned with the write); layout and matrix kernels must not.

void AddInto(const Tensor& a, const Tensor& b, Tensor* out);
void MulInto(const Tensor& a, const Tensor& b, Tensor* out);
void AddScalarInto(const Tensor& a, float s, Tensor* out);
void MulScalarInto(const Tensor& a, float s, Tensor* out);
void SigmoidInto(const Tensor& a, Tensor* out);
void TanhInto(const Tensor& a, Tensor* out);
void ReluInto(const Tensor& a, Tensor* out);
void MatMulInto(const Tensor& a, const Tensor& b, Tensor* out);
void BatchMatMulInto(const Tensor& a, const Tensor& b, Tensor* out);
void PermuteInto(const Tensor& a, const std::vector<int64_t>& perm,
                 Tensor* out);
/// Concatenates `count` tensors (given as a pointer array so callers on the
/// serving hot path need no temporary vector) along `axis`.
void ConcatInto(const Tensor* const* parts, size_t count, int64_t axis,
                Tensor* out);
void SliceInto(const Tensor& a, int64_t axis, int64_t start, int64_t len,
               Tensor* out);
void SumInto(const Tensor& a, int64_t axis, bool keepdim, Tensor* out);
void SoftmaxLastDimInto(const Tensor& a, Tensor* out);

// -- Prepacked GEMM (compiled-inference weights) --------------------------
//
// The blocked GEMM packs its right operand into j-tile-major panels on
// every call. For a static operand (a trained weight matrix on the serving
// path) that pack can be hoisted: `PackGemmWeight` performs it once and
// `MatMulPrepackedInto` runs the identical blocked row pipeline against the
// stored panels — same micro-kernels, same k-ascending accumulation per
// output element, so results are bit-identical to MatMul on the same
// operands. Runs serially (the serving worker owns exactly one core-equiv
// of work; pool dispatch on these problem sizes costs more than it saves).

template <typename T>
struct PackedGemmBT {
  // Narrow weights (n <= 16): row-major, columns zero-padded to `pw`.
  // Wider weights (pw == 0): j-tile-major, kNR-strided (see tensor_ops.cc).
  std::vector<T> panels;
  int64_t k = 0;
  int64_t n = 0;
  int64_t pw = 0;  // padded row width of the small-n layout; 0 = blocked
};
using PackedGemmB = PackedGemmBT<float>;
using PackedGemmB64 = PackedGemmBT<double>;

/// Packs a rank-2 weight `b` ([k, n]) for MatMulPrepackedInto.
PackedGemmB PackGemmWeight(const Tensor& b);

/// True when the blocked prepacked path handles an [rows, k] x [k, n]
/// product (enough rows for the register tile). Callers fall back to
/// MatMulInto / BatchMatMulInto otherwise.
bool PrepackedGemmViable(int64_t rows, int64_t k, int64_t n);

/// out = a · b for `a` of any rank >= 1 flattened to [numel/k, k]; `out`
/// must hold numel/k x n elements. Requires PrepackedGemmViable.
void MatMulPrepackedInto(const Tensor& a, const PackedGemmB& b, Tensor* out);

// -- Raw GEMM entry (layout kernels) --------------------------------------

/// out (m x n, already zero-filled) += a (m x k) · b (k x n), raw row-major
/// pointers. Runs the exact naive/blocked dispatch behind MatMul, so per-
/// element accumulation (k-ascending, one fused chain) is bit-identical to
/// the Tensor entry points. For layout-restructuring kernels (e.g. the wide
/// Chebyshev basis) that operate on scratch buffers rather than Tensors.
void GemmRawInto(const float* a, const float* b, float* out, int64_t m,
                 int64_t k, int64_t n);

/// Double overload for the fp64 reference serving plan: the identical
/// blocked/naive pipeline instantiated at double width (same micro-kernel
/// templates, same ODF_FMADD contraction pinning, register tiles sized for
/// the fp32 vector width).
void GemmRawInto(const double* a, const double* b, double* out, int64_t m,
                 int64_t k, int64_t n);

// -- Width-parameterized raw kernels (precision-lowered serving) -----------
//
// The compiled serving path (serve/forward_plan.h) runs at a selectable
// precision. These raw entry points are the scalar-templated cores the
// fp32 Tensor kernels above are built from, exposed so the fp64 plan can
// replay the identical schedule over double arenas with no per-call
// conversions. Instantiated for float and double in tensor_ops.cc.

/// Packs a row-major [k, n] weight for MatMulPrepackedRaw — same panel
/// layout decisions as PackGemmWeight at either width.
template <typename T>
PackedGemmBT<T> PackGemmWeightRaw(const T* b, int64_t k, int64_t n);

/// Prepacked GEMM over raw pointers: out (rows x b.n) = a (rows x b.k) · b.
/// Requires PrepackedGemmViable(rows, b.k, b.n). Serial.
template <typename T>
void MatMulPrepackedRaw(const T* a, int64_t rows, const PackedGemmBT<T>& b,
                        T* out);

/// Row-wise softmax: out[o, :] = softmax(in[o, :]) for `outer` rows of
/// `inner` elements (max-subtracted, FastExp). The exact core behind
/// SoftmaxLastDimInto; float instantiation is bit-identical to it.
template <typename T>
void SoftmaxRowsRaw(const T* in, T* out, int64_t outer, int64_t inner);

/// FusedRecover over raw pointers: r [B,N,beta,K] ⊗ c [B,beta,N',K] →
/// out [B,N,N',K] with softmax over K. The exact core behind
/// FusedRecoverInto; float instantiation is bit-identical to it.
template <typename T>
void FusedRecoverRaw(const T* r, const T* c, T temperature, T* out,
                     int64_t b, int64_t n, int64_t m, int64_t beta,
                     int64_t k);

// -- Fused OD recovery ----------------------------------------------------
//
// The paper's recover stage in one batched kernel:
//   out[b,o,d,:] = softmax_k( temperature * sum_beta r[b,o,beta,:] *
//                                                    c[b,beta,d,:] )
// with r: [B,N,beta,K], c: [B,beta,N',K] -> out: [B,N,N',K]. Replaces the
// permute + batched-GEMM + scalar-mul + softmax pipeline with a single pass
// per (b,o,d) cell; accumulation over beta is ascending and cells partition
// disjointly across threads, so results are thread-count invariant.

Tensor FusedRecover(const Tensor& r, const Tensor& c, float temperature);
void FusedRecoverInto(const Tensor& r, const Tensor& c, float temperature,
                      Tensor* out);

/// Backward of FusedRecover. `y` is the forward output, `g` the upstream
/// gradient; writes dL/dr and dL/dc (same shapes as r and c, fully
/// overwritten) and returns dL/dtemperature.
float FusedRecoverGrad(const Tensor& r, const Tensor& c, float temperature,
                       const Tensor& y, const Tensor& g, Tensor* dr,
                       Tensor* dc);

}  // namespace odf

#endif  // ODF_TENSOR_TENSOR_OPS_H_
