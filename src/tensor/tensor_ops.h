#ifndef ODF_TENSOR_TENSOR_OPS_H_
#define ODF_TENSOR_TENSOR_OPS_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace odf {

// Pure tensor kernels. These operate on values only; the autograd layer
// (src/autograd) builds differentiable graph nodes on top of them.

// -- Broadcasting -------------------------------------------------------

/// Returns the numpy-style broadcast shape of `a` and `b`; aborts if the
/// shapes are incompatible.
Shape BroadcastShape(const Shape& a, const Shape& b);

/// True when `from` can be broadcast to `to`.
bool IsBroadcastableTo(const Shape& from, const Shape& to);

/// Sums `t` over its broadcast dimensions so the result has shape `target`
/// (the adjoint of broadcasting; used by autograd backward passes).
Tensor ReduceToShape(const Tensor& t, const Shape& target);

// -- Elementwise binary (with broadcasting) ------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);

// -- Scalar ops ----------------------------------------------------------

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

// -- Elementwise unary ----------------------------------------------------

Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; inputs must be positive (use AddScalar for smoothing).
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Abs(const Tensor& a);
/// Clamps every element into [lo, hi].
Tensor Clamp(const Tensor& a, float lo, float hi);
/// Applies an arbitrary scalar function elementwise (test/utility use).
Tensor Map(const Tensor& a, const std::function<float(float)>& fn);

// -- Matrix products ------------------------------------------------------

/// 2-D matrix product: [m,k] x [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Batched matrix product with leading-batch broadcasting:
/// [B,m,k] x [B,k,n] -> [B,m,n]; either side may be rank-2 and is broadcast
/// across the batch.
Tensor BatchMatMul(const Tensor& a, const Tensor& b);

// -- Layout ---------------------------------------------------------------

/// Transposes a rank-2 tensor.
Tensor Transpose2D(const Tensor& a);

/// Swaps the last two dimensions of a rank>=2 tensor.
Tensor TransposeLast2(const Tensor& a);

/// General permutation of axes; `perm` must be a permutation of 0..rank-1.
Tensor Permute(const Tensor& a, const std::vector<int64_t>& perm);

/// Concatenates tensors along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);

/// Extracts `len` indices starting at `start` along `axis`.
Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t len);

// -- Reductions -----------------------------------------------------------

/// Sum over all elements, returned as a shape-{1} tensor.
Tensor SumAll(const Tensor& a);
/// Mean over all elements, returned as a shape-{1} tensor.
Tensor MeanAll(const Tensor& a);
/// Sum along one axis; `keepdim` keeps the reduced axis with size 1.
Tensor Sum(const Tensor& a, int64_t axis, bool keepdim);
/// Mean along one axis.
Tensor Mean(const Tensor& a, int64_t axis, bool keepdim);
/// Largest element (value only).
float MaxValue(const Tensor& a);
/// Smallest element (value only).
float MinValue(const Tensor& a);

// -- Neural-net helpers -----------------------------------------------------

/// Softmax along the last axis.
Tensor SoftmaxLastDim(const Tensor& a);

/// Squared Frobenius norm (sum of squares) as a float.
float SquaredNorm(const Tensor& a);

/// True when shapes match and elements differ by at most `atol`.
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f);

}  // namespace odf

#endif  // ODF_TENSOR_TENSOR_OPS_H_
