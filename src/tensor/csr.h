#ifndef ODF_TENSOR_CSR_H_
#define ODF_TENSOR_CSR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace odf {

/// Compressed-sparse-row form of a rank-2 float matrix.
///
/// The α-thresholded Gaussian proximity matrices of the paper (and the
/// Laplacians derived from them) are sparse by construction; this is the
/// storage the sparse graph compute path runs on. Rows are stored in
/// ascending column order, so every kernel that walks a row accumulates in
/// a fixed order regardless of thread count.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Extracts the exact non-zeros of a dense rank-2 tensor.
  static CsrMatrix FromDense(const Tensor& dense);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  /// nnz / (rows · cols); 0 for an empty matrix.
  double Density() const {
    const int64_t total = rows_ * cols_;
    return total == 0 ? 0.0 : static_cast<double>(nnz()) / total;
  }

  /// The transposed matrix (columns become rows, still column-ordered).
  CsrMatrix Transpose() const;

  /// Densifies (tests and debugging).
  Tensor ToDense() const;

  /// Row i occupies [row_ptr()[i], row_ptr()[i+1]) of col_idx()/values().
  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;  // size rows + 1
  std::vector<int32_t> col_idx_;  // size nnz
  std::vector<float> values_;     // size nnz
};

/// Sparse × dense product over the node dimension:
///   out[b, i, f] = Σ_j a[i, j] · x[b, j, f]
/// for x of shape [B, n, F] (or [n, F], treated as batch 1 and returned
/// rank-2), with n == a.cols(). Parallel over batch × output rows; each
/// output element accumulates a's row in ascending column order, so results
/// are bit-identical for every thread count.
Tensor SpMM(const CsrMatrix& a, const Tensor& x);

class GraphOperator;

/// Fused Chebyshev basis of a graph operator: for x [B, n, F] computes all
/// `order` taps of the recurrence T_1 = x, T_2 = L̂x, T_s = 2·L̂·T_{s-1} −
/// T_{s-2} directly into one [B, n, order·F] tensor (tap s occupies feature
/// columns [s·F, (s+1)·F)). One kernel launch per tap — no intermediate
/// tensors, concat or elementwise passes — on the CSR or dense path chosen
/// by `op`. Deterministic for every thread count.
Tensor ChebyshevBasis(const GraphOperator& op, const Tensor& x, int64_t order);

/// ChebyshevBasis into a preallocated [B, n, order·F] output (the serving
/// path's arena buffers); shares the kernel above, so results are
/// bit-identical to it.
void ChebyshevBasisInto(const GraphOperator& op, const Tensor& x,
                        int64_t order, Tensor* out);

/// ChebyshevBasis in node-major ("wide") layout for the compiled serving
/// path. The taps are mathematically the recurrence above, but each
/// L̂-product runs as ONE sparse × [n, B·F] product instead of B skinny
/// [n, F] products: x is transposed so that batch and features fuse into one
/// wide row, the register-tiled SpMM streams full tiles, and each tap is
/// scattered back into `out` [B, n, order·F]. Per output element the
/// accumulation is still a's row in ascending column order — the identical
/// sum, term for term, as the narrow kernels — so results are bit-identical
/// to ChebyshevBasisInto at every thread count (asserted by
/// tests/serving_test.cc on trained checkpoints). `w0`/`w1`/`w2` are
/// caller-owned scratch of at least B·n·F floats each (the serving arena);
/// the kernel runs serially and allocates nothing.
void ChebyshevBasisWideInto(const GraphOperator& op, const Tensor& x,
                            int64_t order, Tensor* out, Tensor* w0,
                            Tensor* w1, Tensor* w2);

/// ChebyshevBasisWideInto over raw arrays at either scalar width — the core
/// the float wrapper above delegates to, exposed so the precision-lowered
/// serving plan (serve/forward_plan.h) can run the identical schedule over
/// its own-width arenas. The graph operator arrives as a snapshot: a
/// non-null `dense` ([n, n] row-major) selects the blocked-GEMM path,
/// otherwise the CSR triple row_ptr/col_idx/values (`nnz` non-zeros, rows
/// in ascending column order) drives the serial tiled SpMM. `x` is
/// [batch, n, f] row-major, `out` [batch, n, order·f]; w0/w1/w2 are
/// caller-owned scratch of at least batch·n·f elements each. Instantiated
/// for float and double in csr.cc.
template <typename T>
void ChebyshevBasisWideRaw(const T* dense, const int64_t* row_ptr,
                           const int32_t* col_idx, const T* values,
                           int64_t nnz, int64_t n, const T* x, int64_t batch,
                           int64_t f, int64_t order, T* out, T* w0, T* w1,
                           T* w2);

/// Adjoint of ChebyshevBasis: given dY [B, n, order·F], returns dX [B, n, F]
/// by running the recurrence in reverse with L̂ᵀ.
Tensor ChebyshevBasisGrad(const GraphOperator& op, const Tensor& grad,
                          int64_t order);

/// Single graph application op · x [B, n, F] into a preallocated [B, n, F]
/// output — one polynomial tap of the compiled serving path (serve
/// kGraphApply, used by the diffusion and adaptive bases). Runs the same
/// per-element accumulation as ag::SpMM's forward (CSR tiled SpMM on the
/// sparse path, batched blocked GEMM on the dense path), so results are
/// bit-identical to the tape at every thread count.
void GraphApplyInto(const GraphOperator& op, const Tensor& x, Tensor* out);

/// Double-width GraphApplyInto over raw arrays for fp64 serving plans. The
/// operator arrives as a snapshot: a non-null `dense` ([n, n] row-major)
/// selects the per-batch blocked-GEMM path, otherwise the CSR triple
/// row_ptr/col_idx/values drives the serial tiled SpMM. `x` is
/// [batch, n, f] row-major, `out` likewise.
void GraphApplyRaw64(const double* dense, const int64_t* row_ptr,
                     const int32_t* col_idx, const double* values, int64_t nnz,
                     int64_t n, const double* x, int64_t batch, int64_t f,
                     double* out);

/// A constant square matrix operand — the scaled graph Laplacian L̂ — held
/// in both dense and CSR form (plus both transposes) behind one shared
/// instance, with the compute path chosen once at construction. Every
/// encoder/decoder cell and output head applying the same graph shares one
/// GraphOperator instead of carrying its own dense copy.
///
/// Path selection: `force_sparse` > the ODF_SPARSE_GRAPH environment
/// variable (0 = dense, 1 = sparse) > automatic (sparse iff density ≤
/// kSparseDensityThreshold).
class GraphOperator {
 public:
  /// Above this density the dense blocked GEMM outruns the CSR kernel.
  static constexpr double kSparseDensityThreshold = 0.25;

  /// `force_sparse`: -1 = auto (env override, then density), 0 = dense,
  /// 1 = sparse.
  static std::shared_ptr<const GraphOperator> Make(Tensor dense,
                                                   int force_sparse = -1);

  int64_t nodes() const { return dense_.dim(0); }
  double density() const { return csr_.Density(); }
  bool use_sparse() const { return use_sparse_; }

  const Tensor& dense() const { return dense_; }
  const Tensor& dense_transpose() const { return dense_t_; }
  const CsrMatrix& csr() const { return csr_; }
  const CsrMatrix& csr_transpose() const { return csr_t_; }

 private:
  GraphOperator() = default;

  Tensor dense_;    // n×n
  Tensor dense_t_;  // n×n, transpose
  CsrMatrix csr_;
  CsrMatrix csr_t_;
  bool use_sparse_ = false;
};

}  // namespace odf

#endif  // ODF_TENSOR_CSR_H_
