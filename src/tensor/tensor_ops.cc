#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

namespace odf {
namespace {

// Iterates over a broadcast binary op. `out[i] = fn(a[ai], b[bi])` where the
// flat indices ai/bi are computed with broadcast-aware strides.
template <typename Fn>
Tensor BroadcastBinary(const Tensor& a, const Tensor& b, Fn fn) {
  if (a.shape() == b.shape()) {
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i], pb[i]);
    return out;
  }
  const Shape out_shape = BroadcastShape(a.shape(), b.shape());
  Tensor out(out_shape);
  const int64_t rank = out_shape.rank();

  // Broadcast strides: stride 0 on broadcast dimensions.
  auto broadcast_strides = [&](const Shape& s) {
    std::vector<int64_t> strides(static_cast<size_t>(rank), 0);
    const auto own = s.Strides();
    const int64_t offset = rank - s.rank();
    for (int64_t i = 0; i < s.rank(); ++i) {
      if (s.dim(i) != 1) {
        strides[static_cast<size_t>(offset + i)] = own[static_cast<size_t>(i)];
      }
    }
    return strides;
  };
  const auto sa = broadcast_strides(a.shape());
  const auto sb = broadcast_strides(b.shape());

  std::vector<int64_t> index(static_cast<size_t>(rank), 0);
  const int64_t n = out.numel();
  int64_t ai = 0;
  int64_t bi = 0;
  for (int64_t flat = 0; flat < n; ++flat) {
    out[flat] = fn(a[ai], b[bi]);
    // Odometer increment.
    for (int64_t d = rank - 1; d >= 0; --d) {
      const size_t du = static_cast<size_t>(d);
      ++index[du];
      ai += sa[du];
      bi += sb[du];
      if (index[du] < out_shape.dim(d)) break;
      ai -= sa[du] * out_shape.dim(d);
      bi -= sb[du] * out_shape.dim(d);
      index[du] = 0;
    }
  }
  return out;
}

template <typename Fn>
Tensor Unary(const Tensor& a, Fn fn) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i]);
  return out;
}

}  // namespace

Shape BroadcastShape(const Shape& a, const Shape& b) {
  const int64_t rank = std::max(a.rank(), b.rank());
  std::vector<int64_t> dims(static_cast<size_t>(rank), 1);
  for (int64_t i = 0; i < rank; ++i) {
    const int64_t da = i < rank - a.rank() ? 1 : a.dim(i - (rank - a.rank()));
    const int64_t db = i < rank - b.rank() ? 1 : b.dim(i - (rank - b.rank()));
    ODF_CHECK(da == db || da == 1 || db == 1)
        << "incompatible broadcast: " << a.ToString() << " vs "
        << b.ToString();
    dims[static_cast<size_t>(i)] = std::max(da, db);
  }
  return Shape(dims);
}

bool IsBroadcastableTo(const Shape& from, const Shape& to) {
  if (from.rank() > to.rank()) return false;
  const int64_t offset = to.rank() - from.rank();
  for (int64_t i = 0; i < from.rank(); ++i) {
    if (from.dim(i) != 1 && from.dim(i) != to.dim(offset + i)) return false;
  }
  return true;
}

Tensor ReduceToShape(const Tensor& t, const Shape& target) {
  if (t.shape() == target) return t;
  ODF_CHECK(IsBroadcastableTo(target, t.shape()))
      << t.shape().ToString() << " cannot reduce to " << target.ToString();
  Tensor cur = t;
  // First sum away leading extra dimensions.
  while (cur.rank() > target.rank()) cur = Sum(cur, 0, /*keepdim=*/false);
  // Then sum (keepdim) any axis where the target is 1 but cur is larger.
  for (int64_t i = 0; i < target.rank(); ++i) {
    if (target.dim(i) == 1 && cur.dim(i) != 1) {
      cur = Sum(cur, i, /*keepdim=*/true);
    }
  }
  ODF_CHECK(cur.shape() == target);
  return cur;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x / y; });
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b,
                         [](float x, float y) { return x > y ? x : y; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return Unary(a, [s](float x) { return x + s; });
}
Tensor MulScalar(const Tensor& a, float s) {
  return Unary(a, [s](float x) { return x * s; });
}

Tensor Neg(const Tensor& a) {
  return Unary(a, [](float x) { return -x; });
}
Tensor Exp(const Tensor& a) {
  return Unary(a, [](float x) { return std::exp(x); });
}
Tensor Log(const Tensor& a) {
  return Unary(a, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) {
  return Unary(a, [](float x) { return std::sqrt(x); });
}
Tensor Tanh(const Tensor& a) {
  return Unary(a, [](float x) { return std::tanh(x); });
}
Tensor Sigmoid(const Tensor& a) {
  return Unary(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor Relu(const Tensor& a) {
  return Unary(a, [](float x) { return x > 0 ? x : 0.0f; });
}
Tensor Abs(const Tensor& a) {
  return Unary(a, [](float x) { return std::fabs(x); });
}
Tensor Clamp(const Tensor& a, float lo, float hi) {
  return Unary(a, [lo, hi](float x) { return std::min(std::max(x, lo), hi); });
}
Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  return Unary(a, fn);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  ODF_CHECK_EQ(a.rank(), 2);
  ODF_CHECK_EQ(b.rank(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(1);
  ODF_CHECK_EQ(k, b.dim(0)) << "matmul " << a.shape().ToString() << " x "
                            << b.shape().ToString();
  Tensor out(Shape({m, n}));
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // i-k-j loop order: unit-stride inner loop, decent single-core throughput.
  for (int64_t i = 0; i < m; ++i) {
    float* orow = po + i * n;
    const float* arow = pa + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  if (a.rank() == 2 && b.rank() == 2) return MatMul(a, b);
  ODF_CHECK(a.rank() == 2 || a.rank() == 3);
  ODF_CHECK(b.rank() == 2 || b.rank() == 3);
  const int64_t batch = a.rank() == 3 ? a.dim(0) : b.dim(0);
  if (a.rank() == 3 && b.rank() == 3) {
    ODF_CHECK_EQ(a.dim(0), b.dim(0));
  }
  const int64_t m = a.dim(-2);
  const int64_t k = a.dim(-1);
  const int64_t n = b.dim(-1);
  ODF_CHECK_EQ(k, b.dim(-2)) << "bmm " << a.shape().ToString() << " x "
                             << b.shape().ToString();
  Tensor out(Shape({batch, m, n}));
  const int64_t a_step = a.rank() == 3 ? m * k : 0;
  const int64_t b_step = b.rank() == 3 ? k * n : 0;
  for (int64_t bi = 0; bi < batch; ++bi) {
    const float* pa = a.data() + bi * a_step;
    const float* pb = b.data() + bi * b_step;
    float* po = out.data() + bi * m * n;
    for (int64_t i = 0; i < m; ++i) {
      float* orow = po + i * n;
      const float* arow = pa + i * k;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        const float* brow = pb + kk * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  }
  return out;
}

Tensor Transpose2D(const Tensor& a) {
  ODF_CHECK_EQ(a.rank(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  Tensor out(Shape({n, m}));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out.At2(j, i) = a.At2(i, j);
  }
  return out;
}

Tensor TransposeLast2(const Tensor& a) {
  ODF_CHECK_GE(a.rank(), 2);
  if (a.rank() == 2) return Transpose2D(a);
  std::vector<int64_t> perm(static_cast<size_t>(a.rank()));
  for (int64_t i = 0; i < a.rank(); ++i) perm[static_cast<size_t>(i)] = i;
  std::swap(perm[static_cast<size_t>(a.rank() - 1)],
            perm[static_cast<size_t>(a.rank() - 2)]);
  return Permute(a, perm);
}

Tensor Permute(const Tensor& a, const std::vector<int64_t>& perm) {
  ODF_CHECK_EQ(static_cast<int64_t>(perm.size()), a.rank());
  std::vector<int64_t> new_dims(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) new_dims[i] = a.dim(perm[i]);
  Tensor out{Shape(new_dims)};
  const auto in_strides = a.shape().Strides();
  std::vector<int64_t> src_strides(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    src_strides[i] = in_strides[static_cast<size_t>(perm[i])];
  }
  const int64_t rank = a.rank();
  std::vector<int64_t> index(perm.size(), 0);
  int64_t src = 0;
  const int64_t n = a.numel();
  for (int64_t flat = 0; flat < n; ++flat) {
    out[flat] = a[src];
    for (int64_t d = rank - 1; d >= 0; --d) {
      const size_t du = static_cast<size_t>(d);
      ++index[du];
      src += src_strides[du];
      if (index[du] < new_dims[du]) break;
      src -= src_strides[du] * new_dims[du];
      index[du] = 0;
    }
  }
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  ODF_CHECK(!parts.empty());
  const Tensor& first = parts.front();
  if (axis < 0) axis += first.rank();
  ODF_CHECK_GE(axis, 0);
  ODF_CHECK_LT(axis, first.rank());
  int64_t concat_dim = 0;
  for (const Tensor& p : parts) {
    ODF_CHECK_EQ(p.rank(), first.rank());
    for (int64_t d = 0; d < first.rank(); ++d) {
      if (d != axis) {
        ODF_CHECK_EQ(p.dim(d), first.dim(d));
      }
    }
    concat_dim += p.dim(axis);
  }
  std::vector<int64_t> dims = first.shape().dims();
  dims[static_cast<size_t>(axis)] = concat_dim;
  Tensor out{Shape(dims)};

  // outer = product of dims before axis; inner = product after axis.
  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= first.dim(d);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < first.rank(); ++d) inner *= first.dim(d);

  int64_t dest_offset = 0;
  const int64_t out_row = concat_dim * inner;
  for (const Tensor& p : parts) {
    const int64_t p_row = p.dim(axis) * inner;
    for (int64_t o = 0; o < outer; ++o) {
      const float* src = p.data() + o * p_row;
      float* dst = out.data() + o * out_row + dest_offset;
      std::copy(src, src + p_row, dst);
    }
    dest_offset += p_row;
  }
  return out;
}

Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t len) {
  if (axis < 0) axis += a.rank();
  ODF_CHECK_GE(axis, 0);
  ODF_CHECK_LT(axis, a.rank());
  ODF_CHECK_GE(start, 0);
  ODF_CHECK_GE(len, 0);
  ODF_CHECK_LE(start + len, a.dim(axis));
  std::vector<int64_t> dims = a.shape().dims();
  dims[static_cast<size_t>(axis)] = len;
  Tensor out{Shape(dims)};
  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= a.dim(d);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < a.rank(); ++d) inner *= a.dim(d);
  const int64_t src_row = a.dim(axis) * inner;
  const int64_t dst_row = len * inner;
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = a.data() + o * src_row + start * inner;
    float* dst = out.data() + o * dst_row;
    std::copy(src, src + dst_row, dst);
  }
  return out;
}

Tensor SumAll(const Tensor& a) {
  double total = 0;
  for (int64_t i = 0; i < a.numel(); ++i) total += a[i];
  return Tensor::Scalar(static_cast<float>(total));
}

Tensor MeanAll(const Tensor& a) {
  ODF_CHECK_GT(a.numel(), 0);
  return Tensor::Scalar(SumAll(a).Item() / static_cast<float>(a.numel()));
}

Tensor Sum(const Tensor& a, int64_t axis, bool keepdim) {
  if (axis < 0) axis += a.rank();
  ODF_CHECK_GE(axis, 0);
  ODF_CHECK_LT(axis, a.rank());
  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= a.dim(d);
  const int64_t mid = a.dim(axis);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < a.rank(); ++d) inner *= a.dim(d);

  std::vector<int64_t> dims = a.shape().dims();
  if (keepdim) {
    dims[static_cast<size_t>(axis)] = 1;
  } else {
    dims.erase(dims.begin() + axis);
    if (dims.empty()) dims.push_back(1);
  }
  Tensor out{Shape(dims)};
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t m = 0; m < mid; ++m) {
      const float* src = a.data() + (o * mid + m) * inner;
      float* dst = out.data() + o * inner;
      for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
  return out;
}

Tensor Mean(const Tensor& a, int64_t axis, bool keepdim) {
  const int64_t resolved = axis < 0 ? axis + a.rank() : axis;
  const float denom = static_cast<float>(a.dim(resolved));
  return MulScalar(Sum(a, axis, keepdim), 1.0f / denom);
}

float MaxValue(const Tensor& a) {
  ODF_CHECK_GT(a.numel(), 0);
  float best = a[0];
  for (int64_t i = 1; i < a.numel(); ++i) best = std::max(best, a[i]);
  return best;
}

float MinValue(const Tensor& a) {
  ODF_CHECK_GT(a.numel(), 0);
  float best = a[0];
  for (int64_t i = 1; i < a.numel(); ++i) best = std::min(best, a[i]);
  return best;
}

Tensor SoftmaxLastDim(const Tensor& a) {
  ODF_CHECK_GE(a.rank(), 1);
  const int64_t inner = a.dim(-1);
  ODF_CHECK_GT(inner, 0);
  const int64_t outer = a.numel() / inner;
  Tensor out(a.shape());
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = a.data() + o * inner;
    float* dst = out.data() + o * inner;
    float max_v = src[0];
    for (int64_t i = 1; i < inner; ++i) max_v = std::max(max_v, src[i]);
    float total = 0;
    for (int64_t i = 0; i < inner; ++i) {
      dst[i] = std::exp(src[i] - max_v);
      total += dst[i];
    }
    const float inv = 1.0f / total;
    for (int64_t i = 0; i < inner; ++i) dst[i] *= inv;
  }
  return out;
}

float SquaredNorm(const Tensor& a) {
  double total = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    total += static_cast<double>(a[i]) * a[i];
  }
  return static_cast<float>(total);
}

bool AllClose(const Tensor& a, const Tensor& b, float atol) {
  if (a.shape() != b.shape()) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(a[i] - b[i]) > atol) return false;
  }
  return true;
}

}  // namespace odf
