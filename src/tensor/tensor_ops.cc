#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "tensor/fast_math.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace odf {
namespace {

// -- Parallel substrate tuning --------------------------------------------
//
// Every kernel below keeps one invariant: the arithmetic performed for a
// given output element (operation order included) depends only on the
// problem shape, never on the thread count. ParallelFor partitions disjoint
// output ranges, so ODF_THREADS=1 and ODF_THREADS=N produce bit-identical
// tensors (asserted by substrate_test).

// Minimum elements per chunk for elementwise/layout kernels; below
// `kElemGrain` total the dispatch overhead outweighs the loop.
constexpr int64_t kElemGrain = 1 << 14;

// GEMM cache blocking: kMC x kKC panels of A are packed into thread-local
// buffers (64 KiB, L2-resident) and multiplied into C through a kMR x kNR
// register-tiled micro-kernel; B is packed once per call into j-tile-major
// panels so the micro-kernel streams both operands with unit stride (the
// unpacked column access pattern, stride = row length, thrashes L1 set
// associativity for power-of-two widths). The register tile is sized to the
// widest vector unit the translation unit is compiled for.
constexpr int64_t kMC = 64;
constexpr int64_t kKC = 256;
#if defined(__AVX512F__)
constexpr int64_t kMR = 8;
constexpr int64_t kNR = 32;  // 16 zmm accumulators
#elif defined(__AVX2__)
constexpr int64_t kMR = 6;
constexpr int64_t kNR = 16;  // 12 ymm accumulators
#else
constexpr int64_t kMR = 4;
constexpr int64_t kNR = 8;  // 8 xmm accumulators fit the SSE register file
#endif
static_assert(kMC % kMR == 0, "row block must hold whole strips");

// Problems with fewer multiply-adds than this run the plain triple loop
// (packing would dominate); bigger ones use the blocked kernel, and the
// row-block loop goes parallel once a chunk is worth at least this much.
constexpr int64_t kGemmNaiveFlops = 1 << 12;

// Every kernel in this block is templated on the scalar type T: the float
// instantiation is the fp32 substrate (tape and compiled plan share it, so
// plan-vs-tape bit-identity is structural), and the double instantiation
// backs the fp64 reference serving plan. Loop bodies are identical at both
// widths; only the register economics differ (tile constants are sized for
// the fp32 vector width, so the double kernels run at roughly half the
// lane count — exactly the gap bench_serving's precision sweep measures).

// The seed's i-k-j triple loop; kept as the small-problem path (and as the
// reference the blocked kernel is tested against). Accumulates over k in
// ascending order, exactly like the micro-kernel.
template <typename T>
void GemmNaive(const T* pa, const T* pb, T* po, int64_t m,
               int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    T* orow = po + i * n;
    const T* arow = pa + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const T av = arow[kk];
      if (av == T(0)) continue;
      const T* brow = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

// Packs rows [i0, i0+rows) x columns [k0, k0+depth) of `a` (leading
// dimension `lda`) into `buf` as ceil(rows/kMR) interleaved strips:
// buf[strip][kk * kMR + r] = a[i0 + strip*kMR + r][k0 + kk], zero-padded in
// r, so the micro-kernel loads kMR contiguous elements per k step.
template <typename T>
void PackA(const T* a, int64_t lda, int64_t i0, int64_t rows, int64_t k0,
           int64_t depth, T* buf) {
  const int64_t strips = (rows + kMR - 1) / kMR;
  for (int64_t s = 0; s < strips; ++s) {
    T* dst = buf + s * depth * kMR;
    const int64_t r_limit = std::min<int64_t>(kMR, rows - s * kMR);
    for (int64_t kk = 0; kk < depth; ++kk) {
      for (int64_t r = 0; r < kMR; ++r) {
        dst[kk * kMR + r] =
            r < r_limit ? a[(i0 + s * kMR + r) * lda + k0 + kk] : T(0);
      }
    }
  }
}

// Number of j-tiles of width kNR covering n columns.
int64_t NumJTiles(int64_t n) { return (n + kNR - 1) / kNR; }

// Packs columns [jt*kNR, ...) of `b` (k x n) into tile `jt` of `buf`:
// buf[jt*k*kNR + kk*kNR + jr] = b[kk][jt*kNR + jr], zero-padded in jr. The
// micro-kernel then streams B with unit stride regardless of n.
template <typename T>
void PackBTile(const T* b, int64_t k, int64_t n, int64_t jt, T* buf) {
  const int64_t j0 = jt * kNR;
  const int64_t nr = std::min<int64_t>(kNR, n - j0);
  T* dst = buf + jt * k * kNR;
  for (int64_t kk = 0; kk < k; ++kk) {
    const T* src = b + kk * n + j0;
    T* row = dst + kk * kNR;
    for (int64_t j = 0; j < nr; ++j) row[j] = src[j];
    for (int64_t j = nr; j < kNR; ++j) row[j] = T(0);
  }
}

// C[kMR, W] += Apack_strip[depth, kMR] * Bpack_tile[depth, kNR]; compile-time
// bounds let the j loops vectorize and keep the kMR*W accumulator block in
// vector registers. W is the live tile width: kNR for interior tiles, and a
// narrower power-of-two (kNR/2, kNR/4) for n % kNR column remainders so that
// common skinny outputs (e.g. n = 16 with kNR = 32) do not fall back to the
// runtime-bounded edge kernel. B panel rows keep their kNR stride.
template <int64_t W, typename T>
void MicroKernelFull(const T* ap, const T* bp, T* c, int64_t ldc,
                     int64_t depth) {
  T acc[kMR * W];
  for (int64_t r = 0; r < kMR; ++r) {
    for (int64_t j = 0; j < W; ++j) acc[r * W + j] = c[r * ldc + j];
  }
  for (int64_t kk = 0; kk < depth; ++kk) {
    const T* brow = bp + kk * kNR;
    const T* astrip = ap + kk * kMR;
    for (int64_t r = 0; r < kMR; ++r) {
      const T av = astrip[r];
      for (int64_t j = 0; j < W; ++j) acc[r * W + j] += av * brow[j];
    }
  }
  for (int64_t r = 0; r < kMR; ++r) {
    for (int64_t j = 0; j < W; ++j) c[r * ldc + j] = acc[r * W + j];
  }
}

// Full-height tiles whose nr is not one of the compile-time widths above
// (skinny n % kNR remainders, e.g. the model's beta/bucket dims landing on
// n in 4..16): compute the whole compile-time width W >= nr in registers —
// B panel rows are zero-padded to kNR, so the extra lanes read zeros — and
// store back only the nr live columns. Per live element the accumulation is
// term-for-term identical to MicroKernelFull/Edge, so this is a pure store
// mask, not a different rounding.
template <int64_t W, typename T>
void MicroKernelFullTail(const T* ap, const T* bp, T* c, int64_t ldc,
                         int64_t depth, int64_t nr) {
  T acc[kMR * W] = {};
  for (int64_t r = 0; r < kMR; ++r) {
    for (int64_t j = 0; j < nr; ++j) acc[r * W + j] = c[r * ldc + j];
  }
  for (int64_t kk = 0; kk < depth; ++kk) {
    const T* brow = bp + kk * kNR;
    const T* astrip = ap + kk * kMR;
    for (int64_t r = 0; r < kMR; ++r) {
      const T av = astrip[r];
      for (int64_t j = 0; j < W; ++j) acc[r * W + j] += av * brow[j];
    }
  }
  for (int64_t r = 0; r < kMR; ++r) {
    for (int64_t j = 0; j < nr; ++j) c[r * ldc + j] = acc[r * W + j];
  }
}

// Edge tiles (m % kMR row remainders) with runtime bounds; B padding makes
// reads past nr safe, but only [mr, nr) is stored back.
template <typename T>
void MicroKernelEdge(const T* ap, const T* bp, T* c, int64_t ldc,
                     int64_t depth, int64_t mr, int64_t nr) {
  T acc[kMR * kNR] = {};
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) acc[r * kNR + j] = c[r * ldc + j];
  }
  for (int64_t kk = 0; kk < depth; ++kk) {
    const T* brow = bp + kk * kNR;
    const T* astrip = ap + kk * kMR;
    for (int64_t r = 0; r < mr; ++r) {
      const T av = astrip[r];
      for (int64_t j = 0; j < nr; ++j) acc[r * kNR + j] += av * brow[j];
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) c[r * ldc + j] = acc[r * kNR + j];
  }
}

// Blocked GEMM over output rows [i0, i1) against packed B; `apack` is a
// caller-provided kMC * kKC scratch buffer. Row-block boundaries are
// absolute (multiples of kMC from row 0), so any partition of blocks across
// threads computes each C element with the identical k-ascending
// accumulation order.
template <typename T>
void GemmRows(const T* pa, const T* bpack, T* po, int64_t k,
              int64_t n, int64_t i0, int64_t i1, T* apack) {
  for (int64_t ib = i0; ib < i1; ib += kMC) {
    const int64_t rows = std::min(kMC, i1 - ib);
    for (int64_t k0 = 0; k0 < k; k0 += kKC) {
      const int64_t depth = std::min(kKC, k - k0);
      PackA(pa, k, ib, rows, k0, depth, apack);
      const int64_t strips = (rows + kMR - 1) / kMR;
      for (int64_t jt = 0; jt < NumJTiles(n); ++jt) {
        const int64_t j0 = jt * kNR;
        const int64_t nr = std::min<int64_t>(kNR, n - j0);
        const T* bpanel = bpack + jt * k * kNR + k0 * kNR;
        for (int64_t s = 0; s < strips; ++s) {
          const T* ap = apack + s * depth * kMR;
          T* c = po + (ib + s * kMR) * n + j0;
          const int64_t mr = std::min(kMR, rows - s * kMR);
          if (mr == kMR) {
            // Full-height strip: pick the narrowest compile-time tile
            // covering nr so no skinny column remainder (n % kNR down to 1)
            // ever reaches the runtime-bounded edge kernel.
            if (nr == kNR) {
              MicroKernelFull<kNR>(ap, bpanel, c, n, depth);
            } else if (nr == kNR / 2 && kNR / 2 >= 8) {
              MicroKernelFull<kNR / 2>(ap, bpanel, c, n, depth);
            } else if (nr == kNR / 4 && kNR / 4 >= 8) {
              MicroKernelFull<kNR / 4>(ap, bpanel, c, n, depth);
            } else if (nr <= 4) {
              MicroKernelFullTail<4>(ap, bpanel, c, n, depth, nr);
            } else if (nr <= 8) {
              MicroKernelFullTail<8>(ap, bpanel, c, n, depth, nr);
            } else if (nr <= kNR / 2) {
              MicroKernelFullTail<kNR / 2>(ap, bpanel, c, n, depth, nr);
            } else {
              MicroKernelFullTail<kNR>(ap, bpanel, c, n, depth, nr);
            }
          } else {
            MicroKernelEdge(ap, bpanel, c, n, depth, mr, nr);
          }
        }
      }
    }
  }
}

// Per-thread A-packing scratch (kMC x kKC, fixed size — one buffer per
// scalar width). PackA fully writes every element it later reads — padding
// included — so the buffer is never zero-initialized; reusing it across
// calls removes a 64 KB value-init from every blocked GEMM, which dominates
// small serving-sized products.
template <typename T>
T* ApackScratch() {
  thread_local std::unique_ptr<T[]> buf =
      std::make_unique_for_overwrite<T[]>(static_cast<size_t>(kMC * kKC));
  return buf.get();
}

// Widest output for the register-strip small-N kernel below. The serving
// models' weight matmuls are all this narrow (n = buckets, filters or
// hidden size), where the blocked path's packing and edge tiles cost more
// than the multiply itself.
constexpr int64_t kSmallNMax = 16;

// [rows, k] x [k, n] against a B copy whose rows are zero-padded to width P
// (compile-time, so the P-column accumulator strips registerize). Each
// output element accumulates a[i, :]·b[:, j] in ascending k — the identical
// per-element sum, term for term, as GemmNaive — and padding columns are
// computed into registers but never stored, so results are bit-identical to
// the unpacked kernels. Serial; per-row results are independent, so callers
// may split the row range across threads without changing any element.
template <int64_t P, typename T>
void GemmSmallPadded(const T* a, const T* bp, T* po, int64_t rows,
                     int64_t k, int64_t n) {
  constexpr int64_t R = 4;  // row strip: R·P accumulators
  int64_t i = 0;
  for (; i + R <= rows; i += R) {
    T acc[R][P] = {};
    const T* a0 = a + i * k;
    const T* a1 = a0 + k;
    const T* a2 = a1 + k;
    const T* a3 = a2 + k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const T* brow = bp + kk * P;
      const T v0 = a0[kk];
      const T v1 = a1[kk];
      const T v2 = a2[kk];
      const T v3 = a3[kk];
      for (int64_t j = 0; j < P; ++j) {
        acc[0][j] = ODF_FMADD(v0, brow[j], acc[0][j]);
        acc[1][j] = ODF_FMADD(v1, brow[j], acc[1][j]);
        acc[2][j] = ODF_FMADD(v2, brow[j], acc[2][j]);
        acc[3][j] = ODF_FMADD(v3, brow[j], acc[3][j]);
      }
    }
    for (int64_t r = 0; r < R; ++r) {
      T* orow = po + (i + r) * n;
      for (int64_t j = 0; j < n; ++j) orow[j] = acc[r][j];
    }
  }
  for (; i < rows; ++i) {
    T acc[P] = {};
    const T* ar = a + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const T* brow = bp + kk * P;
      const T v = ar[kk];
      for (int64_t j = 0; j < P; ++j) acc[j] = ODF_FMADD(v, brow[j], acc[j]);
    }
    T* orow = po + i * n;
    for (int64_t j = 0; j < n; ++j) orow[j] = acc[j];
  }
}

// Zero-padded row width for the small-N layout. One full SIMD vector per
// row: floats always pad to 16 lanes — an 8-wide float row tempts the
// vectorizer into pairing two rows per register with cross-lane inserts,
// which runs slower than the double kernel at the same shape — while
// 8 doubles already fill a 512-bit vector. Padding lanes are computed but
// never stored, so the choice is pure layout, not rounding.
template <typename T>
int64_t SmallNPadWidth(int64_t n) {
  return (sizeof(T) == 4 || n > 8) ? kSmallNMax : 8;
}

// Tallest A for the no-pack panel kernel below: two micro-kernel strips.
// Above this the blocked path's A/B packing amortizes; at or below it the
// packing costs more than the whole multiply.
constexpr int64_t kSmallMMax = 2 * kMR;

// Row-strip kernel over one column panel of B read in place: `bp` points at
// a k x P panel with leading dimension `ldb` (the unpacked B itself for full
// panels, a zero-padded scratch copy for the n % kNR tail), and columns
// [cj0, cj0+nr) of C receive the result. No per-call packing or allocation.
// Accumulates onto C in ascending k with the pinned contraction, so per
// live element the sum is term-for-term identical to the blocked
// micro-kernels; lanes >= nr are computed in registers but never stored.
template <int64_t P, typename T>
void GemmSmallMPanel(const T* a, const T* bp, int64_t ldb, T* c, int64_t ldc,
                     int64_t rows, int64_t k, int64_t cj0, int64_t nr) {
  constexpr int64_t R = 4;  // row strip: R·P accumulators
  int64_t i = 0;
  for (; i + R <= rows; i += R) {
    T acc[R][P] = {};
    for (int64_t r = 0; r < R; ++r) {
      const T* crow = c + (i + r) * ldc + cj0;
      for (int64_t j = 0; j < nr; ++j) acc[r][j] = crow[j];
    }
    const T* a0 = a + i * k;
    const T* a1 = a0 + k;
    const T* a2 = a1 + k;
    const T* a3 = a2 + k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const T* brow = bp + kk * ldb;
      const T v0 = a0[kk];
      const T v1 = a1[kk];
      const T v2 = a2[kk];
      const T v3 = a3[kk];
      for (int64_t j = 0; j < P; ++j) {
        acc[0][j] = ODF_FMADD(v0, brow[j], acc[0][j]);
        acc[1][j] = ODF_FMADD(v1, brow[j], acc[1][j]);
        acc[2][j] = ODF_FMADD(v2, brow[j], acc[2][j]);
        acc[3][j] = ODF_FMADD(v3, brow[j], acc[3][j]);
      }
    }
    for (int64_t r = 0; r < R; ++r) {
      T* crow = c + (i + r) * ldc + cj0;
      for (int64_t j = 0; j < nr; ++j) crow[j] = acc[r][j];
    }
  }
  for (; i < rows; ++i) {
    T acc[P] = {};
    T* crow = c + i * ldc + cj0;
    for (int64_t j = 0; j < nr; ++j) acc[j] = crow[j];
    const T* ar = a + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const T* brow = bp + kk * ldb;
      const T v = ar[kk];
      for (int64_t j = 0; j < P; ++j) acc[j] = ODF_FMADD(v, brow[j], acc[j]);
    }
    for (int64_t j = 0; j < nr; ++j) crow[j] = acc[j];
  }
}

// Per-thread zero-padded scratch for the small-m tail panel (k x kNR, grown
// on demand and reused across calls).
template <typename T>
T* SmallMPadScratch(int64_t k) {
  thread_local std::vector<T> buf;
  if (static_cast<int64_t>(buf.size()) < k * kNR) {
    buf.resize(static_cast<size_t>(k * kNR));
  }
  return buf.data();
}

// True when the blocked path would waste more on packing than it gains:
// small problems and degenerate (vector-like) operands. Skinny outputs with
// 4 <= n <= kSmallNMax no longer count as degenerate — Gemm routes them
// through the padded register-strip kernel instead of the scalar triple
// loop (the beta/bucket dims of the recover stage live exactly there).
bool UseNaiveGemm(int64_t m, int64_t k, int64_t n) {
  return m * k * n <= kGemmNaiveFlops || m < kMR || n < 4;
}

// Shared entry: C (zero-initialized, m x n) += A (m x k) * B (k x n),
// choosing naive / small-n padded / blocked-serial / blocked-parallel by
// problem size.
template <typename T>
void Gemm(const T* pa, const T* pb, T* po, int64_t m, int64_t k,
          int64_t n) {
  if (UseNaiveGemm(m, k, n)) {
    GemmNaive(pa, pb, po, m, k, n);
    return;
  }
  if (n <= kSmallNMax) {
    // Skinny output: pad B's rows to a compile-time width once, then run
    // the register-strip kernel over parallel row chunks (rows are
    // independent, so any partition is bit-identical). GemmSmallPadded
    // overwrites its output rows, matching the zero-filled C contract.
    const int64_t pw = SmallNPadWidth<T>(n);
    auto bp = std::make_unique_for_overwrite<T[]>(static_cast<size_t>(k * pw));
    for (int64_t kk = 0; kk < k; ++kk) {
      const T* src = pb + kk * n;
      T* dst = bp.get() + kk * pw;
      for (int64_t j = 0; j < n; ++j) dst[j] = src[j];
      for (int64_t j = n; j < pw; ++j) dst[j] = T(0);
    }
    const int64_t grain = std::max<int64_t>(
        1, kGemmNaiveFlops / std::max<int64_t>(1, k * n));
    ParallelFor(m, grain, [&](int64_t i0, int64_t i1) {
      if (pw == 8) {
        GemmSmallPadded<8>(pa + i0 * k, bp.get(), po + i0 * n, i1 - i0, k, n);
      } else {
        GemmSmallPadded<kSmallNMax>(pa + i0 * k, bp.get(), po + i0 * n,
                                    i1 - i0, k, n);
      }
    });
    return;
  }
  if (m <= kSmallMMax) {
    // Short A against a wide B: packing either operand costs more than the
    // multiply itself. Stream B's full-width column panels in place and pad
    // only the n % kNR tail into per-thread scratch. Panels write disjoint
    // column ranges, so any partition across threads is bit-identical.
    const int64_t full_tiles = n / kNR;
    const int64_t grain = std::max<int64_t>(
        1, kGemmNaiveFlops / std::max<int64_t>(1, m * k * kNR));
    ParallelFor(full_tiles, grain, [&](int64_t t0, int64_t t1) {
      for (int64_t jt = t0; jt < t1; ++jt) {
        GemmSmallMPanel<kNR>(pa, pb + jt * kNR, n, po, n, m, k, jt * kNR,
                             kNR);
      }
    });
    const int64_t j0 = full_tiles * kNR;
    if (j0 < n) {
      const int64_t nr = n - j0;
      T* pad = SmallMPadScratch<T>(k);
      for (int64_t kk = 0; kk < k; ++kk) {
        const T* src = pb + kk * n + j0;
        T* dst = pad + kk * kNR;
        for (int64_t j = 0; j < nr; ++j) dst[j] = src[j];
        for (int64_t j = nr; j < kNR; ++j) dst[j] = T(0);
      }
      GemmSmallMPanel<kNR>(pa, pad, kNR, po, n, m, k, j0, nr);
    }
    return;
  }
  // PackBTile fully writes each tile (padding included), so the pack buffer
  // is allocated uninitialized.
  auto bpack = std::make_unique_for_overwrite<T[]>(
      static_cast<size_t>(NumJTiles(n) * k * kNR));
  const int64_t pack_grain =
      std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, k * kNR));
  ParallelFor(NumJTiles(n), pack_grain, [&](int64_t t0, int64_t t1) {
    for (int64_t jt = t0; jt < t1; ++jt) PackBTile(pb, k, n, jt, bpack.get());
  });
  const int64_t num_blocks = (m + kMC - 1) / kMC;
  const int64_t flops_per_block = std::min(kMC, m) * k * n;
  const int64_t grain = std::max<int64_t>(
      1, kGemmNaiveFlops / std::max<int64_t>(1, flops_per_block));
  ParallelFor(num_blocks, grain, [&](int64_t b0, int64_t b1) {
    GemmRows(pa, bpack.get(), po, k, n, b0 * kMC, std::min(m, b1 * kMC),
             ApackScratch<T>());
  });
}

// Runs an elementwise-style kernel over [0, n) flat indices.
template <typename Body>
void ParallelElems(int64_t n, const Body& body) {
  ParallelFor(n, kElemGrain, body);
}

}  // namespace

void GemmRawInto(const float* a, const float* b, float* out, int64_t m,
                 int64_t k, int64_t n) {
  Gemm(a, b, out, m, k, n);
}

void GemmRawInto(const double* a, const double* b, double* out, int64_t m,
                 int64_t k, int64_t n) {
  Gemm(a, b, out, m, k, n);
}

template <typename T>
PackedGemmBT<T> PackGemmWeightRaw(const T* b, int64_t k, int64_t n) {
  PackedGemmBT<T> packed;
  packed.k = k;
  packed.n = n;
  if (packed.n <= kSmallNMax) {
    // Small-N path: row-major copy, columns zero-padded to one full SIMD
    // vector of the scalar width (see SmallNPadWidth).
    packed.pw = SmallNPadWidth<T>(packed.n);
    packed.panels.assign(static_cast<size_t>(packed.k * packed.pw), T(0));
    for (int64_t kk = 0; kk < packed.k; ++kk) {
      for (int64_t j = 0; j < packed.n; ++j) {
        packed.panels[static_cast<size_t>(kk * packed.pw + j)] =
            b[kk * packed.n + j];
      }
    }
    return packed;
  }
  packed.panels.resize(
      static_cast<size_t>(NumJTiles(packed.n) * packed.k * kNR));
  for (int64_t jt = 0; jt < NumJTiles(packed.n); ++jt) {
    PackBTile(b, packed.k, packed.n, jt, packed.panels.data());
  }
  return packed;
}

template PackedGemmBT<float> PackGemmWeightRaw(const float*, int64_t, int64_t);
template PackedGemmBT<double> PackGemmWeightRaw(const double*, int64_t,
                                                int64_t);

PackedGemmB PackGemmWeight(const Tensor& b) {
  ODF_CHECK_EQ(b.rank(), 2);
  return PackGemmWeightRaw(b.data(), b.dim(0), b.dim(1));
}

bool PrepackedGemmViable(int64_t rows, int64_t k, int64_t n) {
  (void)k;
  (void)n;
  return rows >= kMR;
}

template <typename T>
void MatMulPrepackedRaw(const T* a, int64_t rows, const PackedGemmBT<T>& b,
                        T* out) {
  if (b.pw == 8) {
    GemmSmallPadded<8>(a, b.panels.data(), out, rows, b.k, b.n);
    return;
  }
  if (b.pw == kSmallNMax) {
    GemmSmallPadded<kSmallNMax>(a, b.panels.data(), out, rows, b.k, b.n);
    return;
  }
  std::fill(out, out + rows * b.n, T(0));
  if (rows <= kSmallMMax) {
    // Short A: the blocked path's per-call A packing costs more than the
    // multiply. The packed tiles are already k x kNR row-major panels, so
    // run the no-pack panel kernel straight over them (the last tile is
    // zero-padded by PackBTile, making full-width reads safe).
    for (int64_t jt = 0; jt < NumJTiles(b.n); ++jt) {
      const int64_t j0 = jt * kNR;
      GemmSmallMPanel<kNR>(a, b.panels.data() + jt * b.k * kNR, kNR, out,
                           b.n, rows, b.k, j0,
                           std::min<int64_t>(kNR, b.n - j0));
    }
    return;
  }
  GemmRows(a, b.panels.data(), out, b.k, b.n, 0, rows, ApackScratch<T>());
}

template void MatMulPrepackedRaw(const float*, int64_t,
                                 const PackedGemmBT<float>&, float*);
template void MatMulPrepackedRaw(const double*, int64_t,
                                 const PackedGemmBT<double>&, double*);

void MatMulPrepackedInto(const Tensor& a, const PackedGemmB& b, Tensor* out) {
  ODF_CHECK_EQ(a.numel() % b.k, 0);
  const int64_t rows = a.numel() / b.k;
  ODF_CHECK(PrepackedGemmViable(rows, b.k, b.n));
  ODF_CHECK_EQ(out->numel(), rows * b.n);
  MatMulPrepackedRaw(a.data(), rows, b, out->data());
}

namespace {

// Iterates over a broadcast binary op. `out[i] = fn(a[ai], b[bi])` where the
// flat indices ai/bi are computed with broadcast-aware strides. `out` must
// already hold the broadcast result shape; the allocating BroadcastBinary
// wrapper below shares this exact loop body, so both paths are bit-identical.
template <typename Fn>
void BroadcastBinaryInto(const Tensor& a, const Tensor& b, Tensor* out,
                         Fn fn) {
  if (a.shape() == b.shape()) {
    ODF_CHECK(out->shape() == a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out->data();
    ParallelElems(a.numel(), [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) po[i] = fn(pa[i], pb[i]);
    });
    return;
  }
  const Shape out_shape = BroadcastShape(a.shape(), b.shape());
  ODF_CHECK(out->shape() == out_shape);
  const int64_t rank = out_shape.rank();

  // Broadcast strides: stride 0 on broadcast dimensions.
  auto broadcast_strides = [&](const Shape& s) {
    std::vector<int64_t> strides(static_cast<size_t>(rank), 0);
    const auto own = s.Strides();
    const int64_t offset = rank - s.rank();
    for (int64_t i = 0; i < s.rank(); ++i) {
      if (s.dim(i) != 1) {
        strides[static_cast<size_t>(offset + i)] = own[static_cast<size_t>(i)];
      }
    }
    return strides;
  };
  const auto sa = broadcast_strides(a.shape());
  const auto sb = broadcast_strides(b.shape());

  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  ParallelElems(out->numel(), [&](int64_t begin, int64_t end) {
    // Seed the odometer (and the broadcast source offsets) from the chunk's
    // first flat index, then walk incrementally.
    std::vector<int64_t> index(static_cast<size_t>(rank), 0);
    int64_t ai = 0;
    int64_t bi = 0;
    int64_t rem = begin;
    for (int64_t d = rank - 1; d >= 0; --d) {
      const size_t du = static_cast<size_t>(d);
      index[du] = rem % out_shape.dim(d);
      rem /= out_shape.dim(d);
      ai += index[du] * sa[du];
      bi += index[du] * sb[du];
    }
    for (int64_t flat = begin; flat < end; ++flat) {
      po[flat] = fn(pa[ai], pb[bi]);
      // Odometer increment.
      for (int64_t d = rank - 1; d >= 0; --d) {
        const size_t du = static_cast<size_t>(d);
        ++index[du];
        ai += sa[du];
        bi += sb[du];
        if (index[du] < out_shape.dim(d)) break;
        ai -= sa[du] * out_shape.dim(d);
        bi -= sb[du] * out_shape.dim(d);
        index[du] = 0;
      }
    }
  });
}

template <typename Fn>
Tensor BroadcastBinary(const Tensor& a, const Tensor& b, Fn fn) {
  Tensor out(BroadcastShape(a.shape(), b.shape()));
  BroadcastBinaryInto(a, b, &out, fn);
  return out;
}

template <typename Fn>
void UnaryInto(const Tensor& a, Tensor* out, Fn fn) {
  ODF_CHECK(out->shape() == a.shape());
  const float* pa = a.data();
  float* po = out->data();
  ParallelElems(a.numel(), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) po[i] = fn(pa[i]);
  });
}

template <typename Fn>
Tensor Unary(const Tensor& a, Fn fn) {
  Tensor out(a.shape());
  UnaryInto(a, &out, fn);
  return out;
}

}  // namespace

Shape BroadcastShape(const Shape& a, const Shape& b) {
  const int64_t rank = std::max(a.rank(), b.rank());
  std::vector<int64_t> dims(static_cast<size_t>(rank), 1);
  for (int64_t i = 0; i < rank; ++i) {
    const int64_t da = i < rank - a.rank() ? 1 : a.dim(i - (rank - a.rank()));
    const int64_t db = i < rank - b.rank() ? 1 : b.dim(i - (rank - b.rank()));
    ODF_CHECK(da == db || da == 1 || db == 1)
        << "incompatible broadcast: " << a.ToString() << " vs "
        << b.ToString();
    dims[static_cast<size_t>(i)] = std::max(da, db);
  }
  return Shape(dims);
}

bool IsBroadcastableTo(const Shape& from, const Shape& to) {
  if (from.rank() > to.rank()) return false;
  const int64_t offset = to.rank() - from.rank();
  for (int64_t i = 0; i < from.rank(); ++i) {
    if (from.dim(i) != 1 && from.dim(i) != to.dim(offset + i)) return false;
  }
  return true;
}

Tensor ReduceToShape(const Tensor& t, const Shape& target) {
  if (t.shape() == target) return t;
  ODF_CHECK(IsBroadcastableTo(target, t.shape()))
      << t.shape().ToString() << " cannot reduce to " << target.ToString();
  Tensor cur = t;
  // First sum away leading extra dimensions.
  while (cur.rank() > target.rank()) cur = Sum(cur, 0, /*keepdim=*/false);
  // Then sum (keepdim) any axis where the target is 1 but cur is larger.
  for (int64_t i = 0; i < target.rank(); ++i) {
    if (target.dim(i) == 1 && cur.dim(i) != 1) {
      cur = Sum(cur, i, /*keepdim=*/true);
    }
  }
  ODF_CHECK(cur.shape() == target);
  return cur;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return x / y; });
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b,
                         [](float x, float y) { return x > y ? x : y; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return Unary(a, [s](float x) { return x + s; });
}
Tensor MulScalar(const Tensor& a, float s) {
  return Unary(a, [s](float x) { return x * s; });
}

Tensor Neg(const Tensor& a) {
  return Unary(a, [](float x) { return -x; });
}
Tensor Exp(const Tensor& a) {
  return Unary(a, [](float x) { return FastExp(x); });
}
Tensor Log(const Tensor& a) {
  return Unary(a, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) {
  return Unary(a, [](float x) { return std::sqrt(x); });
}
Tensor Tanh(const Tensor& a) {
  return Unary(a, [](float x) { return FastTanh(x); });
}
Tensor Sigmoid(const Tensor& a) {
  return Unary(a, [](float x) { return FastSigmoid(x); });
}
Tensor Relu(const Tensor& a) {
  return Unary(a, [](float x) { return x > 0 ? x : 0.0f; });
}
Tensor Abs(const Tensor& a) {
  return Unary(a, [](float x) { return std::fabs(x); });
}
Tensor Clamp(const Tensor& a, float lo, float hi) {
  return Unary(a, [lo, hi](float x) { return std::min(std::max(x, lo), hi); });
}
Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  return Unary(a, fn);
}

void AddInto(const Tensor& a, const Tensor& b, Tensor* out) {
  BroadcastBinaryInto(a, b, out, [](float x, float y) { return x + y; });
}
void MulInto(const Tensor& a, const Tensor& b, Tensor* out) {
  BroadcastBinaryInto(a, b, out, [](float x, float y) { return x * y; });
}
void AddScalarInto(const Tensor& a, float s, Tensor* out) {
  UnaryInto(a, out, [s](float x) { return x + s; });
}
void MulScalarInto(const Tensor& a, float s, Tensor* out) {
  UnaryInto(a, out, [s](float x) { return x * s; });
}
void SigmoidInto(const Tensor& a, Tensor* out) {
  UnaryInto(a, out, [](float x) { return FastSigmoid(x); });
}
void TanhInto(const Tensor& a, Tensor* out) {
  UnaryInto(a, out, [](float x) { return FastTanh(x); });
}
void ReluInto(const Tensor& a, Tensor* out) {
  UnaryInto(a, out, [](float x) { return x > 0 ? x : 0.0f; });
}

void MatMulInto(const Tensor& a, const Tensor& b, Tensor* out) {
  ODF_TRACE_SCOPE("kernel/", "gemm", "kernel");
  static Histogram& gemm_hist =
      MetricsRegistry::Global().GetHistogram("gemm.seconds");
  ScopedTimer timer(gemm_hist);
  if (MetricsEnabled()) {
    static Counter& calls = MetricsRegistry::Global().GetCounter("gemm.calls");
    calls.Add(1);
  }
  ODF_CHECK_EQ(a.rank(), 2);
  ODF_CHECK_EQ(b.rank(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(1);
  ODF_CHECK_EQ(k, b.dim(0)) << "matmul " << a.shape().ToString() << " x "
                            << b.shape().ToString();
  ODF_CHECK(out->shape() == Shape({m, n}));
  // Gemm accumulates into its output, matching a fresh zero-filled Tensor.
  std::fill(out->data(), out->data() + m * n, 0.0f);
  Gemm(a.data(), b.data(), out->data(), m, k, n);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  ODF_CHECK_EQ(a.rank(), 2);
  ODF_CHECK_EQ(b.rank(), 2);
  Tensor out(Shape({a.dim(0), b.dim(1)}));
  MatMulInto(a, b, &out);
  return out;
}

void BatchMatMulInto(const Tensor& a, const Tensor& b, Tensor* out) {
  if (a.rank() == 2 && b.rank() == 2) {
    MatMulInto(a, b, out);
    return;
  }
  ODF_TRACE_SCOPE("kernel/", "batch_gemm", "kernel");
  static Histogram& bgemm_hist =
      MetricsRegistry::Global().GetHistogram("batch_gemm.seconds");
  ScopedTimer timer(bgemm_hist);
  if (MetricsEnabled()) {
    static Counter& calls =
        MetricsRegistry::Global().GetCounter("batch_gemm.calls");
    calls.Add(1);
  }
  ODF_CHECK(a.rank() == 2 || a.rank() == 3);
  ODF_CHECK(b.rank() == 2 || b.rank() == 3);
  const int64_t batch = a.rank() == 3 ? a.dim(0) : b.dim(0);
  if (a.rank() == 3 && b.rank() == 3) {
    ODF_CHECK_EQ(a.dim(0), b.dim(0));
  }
  const int64_t m = a.dim(-2);
  const int64_t k = a.dim(-1);
  const int64_t n = b.dim(-1);
  ODF_CHECK_EQ(k, b.dim(-2)) << "bmm " << a.shape().ToString() << " x "
                             << b.shape().ToString();
  ODF_CHECK(out->shape() == Shape({batch, m, n}));
  const int64_t a_step = a.rank() == 3 ? m * k : 0;
  const int64_t b_step = b.rank() == 3 ? k * n : 0;
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  // The per-batch Gemm calls accumulate; start from the zero a fresh Tensor
  // would hold.
  std::fill(po, po + batch * m * n, 0.0f);

  const int64_t per_batch_flops = m * k * n;
  if (batch * per_batch_flops <= kGemmNaiveFlops) {
    for (int64_t bi = 0; bi < batch; ++bi) {
      GemmNaive(pa + bi * a_step, pb + bi * b_step, po + bi * m * n, m, k, n);
    }
    return;
  }
  if (UseNaiveGemm(m, k, n)) {
    // Many small matrices: parallelize over whole batch elements.
    const int64_t grain = std::max<int64_t>(
        1, kGemmNaiveFlops / std::max<int64_t>(1, per_batch_flops));
    ParallelFor(batch, grain, [&](int64_t b0, int64_t b1) {
      for (int64_t bi = b0; bi < b1; ++bi) {
        GemmNaive(pa + bi * a_step, pb + bi * b_step, po + bi * m * n, m, k,
                  n);
      }
    });
    return;
  }
  if (b_step == 0) {
    // One shared right operand (broadcast): pack it once and parallelize
    // over batch x row-block tasks.
    std::vector<float> bpack(static_cast<size_t>(NumJTiles(n) * k * kNR));
    const int64_t pack_grain =
        std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, k * kNR));
    ParallelFor(NumJTiles(n), pack_grain, [&](int64_t t0, int64_t t1) {
      for (int64_t jt = t0; jt < t1; ++jt) {
        PackBTile(pb, k, n, jt, bpack.data());
      }
    });
    const int64_t num_blocks = (m + kMC - 1) / kMC;
    const int64_t flops_per_task = std::min(kMC, m) * k * n;
    const int64_t grain = std::max<int64_t>(
        1, kGemmNaiveFlops / std::max<int64_t>(1, flops_per_task));
    ParallelFor(batch * num_blocks, grain, [&](int64_t t0, int64_t t1) {
      std::vector<float> apack(static_cast<size_t>(kMC * kKC));
      for (int64_t t = t0; t < t1; ++t) {
        const int64_t bi = t / num_blocks;
        const int64_t blk = t % num_blocks;
        const int64_t i0 = blk * kMC;
        GemmRows(pa + bi * a_step, bpack.data(), po + bi * m * n, k, n, i0,
                 std::min(m, i0 + kMC), apack.data());
      }
    });
    return;
  }
  // Large per-batch matrices, distinct B per batch: parallelize over the
  // batch; each task runs the full blocked pipeline (its nested ParallelFor
  // calls serialize inside pool workers).
  ParallelFor(batch, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t bi = b0; bi < b1; ++bi) {
      Gemm(pa + bi * a_step, pb + bi * b_step, po + bi * m * n, m, k, n);
    }
  });
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  if (a.rank() == 2 && b.rank() == 2) return MatMul(a, b);
  const int64_t batch = a.rank() == 3 ? a.dim(0) : b.dim(0);
  Tensor out(Shape({batch, a.dim(-2), b.dim(-1)}));
  BatchMatMulInto(a, b, &out);
  return out;
}

Tensor Transpose2D(const Tensor& a) {
  ODF_CHECK_EQ(a.rank(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  Tensor out(Shape({n, m}));
  const float* pa = a.data();
  float* po = out.data();
  // Cache-blocked 32x32 tiles, parallel over source row-tiles (each writes
  // a disjoint column band of the output).
  constexpr int64_t kTile = 32;
  const int64_t row_tiles = (m + kTile - 1) / kTile;
  const int64_t grain =
      std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, kTile * n));
  ParallelFor(row_tiles, grain, [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      const int64_t i0 = t * kTile;
      const int64_t i1 = std::min(m, i0 + kTile);
      for (int64_t j0 = 0; j0 < n; j0 += kTile) {
        const int64_t j1 = std::min(n, j0 + kTile);
        for (int64_t i = i0; i < i1; ++i) {
          for (int64_t j = j0; j < j1; ++j) po[j * m + i] = pa[i * n + j];
        }
      }
    }
  });
  return out;
}

Tensor TransposeLast2(const Tensor& a) {
  ODF_CHECK_GE(a.rank(), 2);
  if (a.rank() == 2) return Transpose2D(a);
  std::vector<int64_t> perm(static_cast<size_t>(a.rank()));
  for (int64_t i = 0; i < a.rank(); ++i) perm[static_cast<size_t>(i)] = i;
  std::swap(perm[static_cast<size_t>(a.rank() - 1)],
            perm[static_cast<size_t>(a.rank() - 2)]);
  return Permute(a, perm);
}

void PermuteInto(const Tensor& a, const std::vector<int64_t>& perm,
                 Tensor* out) {
  ODF_CHECK_EQ(static_cast<int64_t>(perm.size()), a.rank());
  std::vector<int64_t> new_dims(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) new_dims[i] = a.dim(perm[i]);
  ODF_CHECK(out->shape() == Shape(new_dims));
  const auto in_strides = a.shape().Strides();
  std::vector<int64_t> src_strides(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    src_strides[i] = in_strides[static_cast<size_t>(perm[i])];
  }
  const int64_t rank = a.rank();
  const float* pa = a.data();
  float* po = out->data();

  // Fast path: only the last two axes swap -> a batch of cache-blocked 2-D
  // transposes over contiguous slices.
  bool last2_swap = rank >= 2;
  for (int64_t d = 0; d < rank - 2 && last2_swap; ++d) {
    last2_swap = perm[static_cast<size_t>(d)] == d;
  }
  if (last2_swap) {
    last2_swap = perm[static_cast<size_t>(rank - 2)] == rank - 1 &&
                 perm[static_cast<size_t>(rank - 1)] == rank - 2;
  }
  if (last2_swap) {
    const int64_t rows = a.dim(rank - 2);
    const int64_t cols = a.dim(rank - 1);
    const int64_t slice = rows * cols;
    const int64_t slices = a.numel() / std::max<int64_t>(1, slice);
    constexpr int64_t kTile = 32;
    const int64_t grain =
        std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, slice));
    ParallelFor(slices, grain, [&](int64_t s0, int64_t s1) {
      for (int64_t s = s0; s < s1; ++s) {
        const float* src = pa + s * slice;
        float* dst = po + s * slice;
        for (int64_t i0 = 0; i0 < rows; i0 += kTile) {
          const int64_t i1 = std::min(rows, i0 + kTile);
          for (int64_t j0 = 0; j0 < cols; j0 += kTile) {
            const int64_t j1 = std::min(cols, j0 + kTile);
            for (int64_t i = i0; i < i1; ++i) {
              for (int64_t j = j0; j < j1; ++j) {
                dst[j * rows + i] = src[i * cols + j];
              }
            }
          }
        }
      }
    });
    return;
  }

  ParallelElems(a.numel(), [&](int64_t begin, int64_t end) {
    // Seed the odometer and source offset from the first flat index.
    std::vector<int64_t> index(perm.size(), 0);
    int64_t src = 0;
    int64_t rem = begin;
    for (int64_t d = rank - 1; d >= 0; --d) {
      const size_t du = static_cast<size_t>(d);
      index[du] = rem % new_dims[du];
      rem /= new_dims[du];
      src += index[du] * src_strides[du];
    }
    for (int64_t flat = begin; flat < end; ++flat) {
      po[flat] = pa[src];
      for (int64_t d = rank - 1; d >= 0; --d) {
        const size_t du = static_cast<size_t>(d);
        ++index[du];
        src += src_strides[du];
        if (index[du] < new_dims[du]) break;
        src -= src_strides[du] * new_dims[du];
        index[du] = 0;
      }
    }
  });
}

Tensor Permute(const Tensor& a, const std::vector<int64_t>& perm) {
  ODF_CHECK_EQ(static_cast<int64_t>(perm.size()), a.rank());
  std::vector<int64_t> new_dims(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) new_dims[i] = a.dim(perm[i]);
  Tensor out{Shape(new_dims)};
  PermuteInto(a, perm, &out);
  return out;
}

void ConcatInto(const Tensor* const* parts, size_t count, int64_t axis,
                Tensor* out) {
  ODF_CHECK_GT(count, 0u);
  const Tensor& first = *parts[0];
  if (axis < 0) axis += first.rank();
  ODF_CHECK_GE(axis, 0);
  ODF_CHECK_LT(axis, first.rank());
  int64_t concat_dim = 0;
  for (size_t p = 0; p < count; ++p) {
    ODF_CHECK_EQ(parts[p]->rank(), first.rank());
    for (int64_t d = 0; d < first.rank(); ++d) {
      if (d != axis) {
        ODF_CHECK_EQ(parts[p]->dim(d), first.dim(d));
      }
    }
    concat_dim += parts[p]->dim(axis);
  }
  std::vector<int64_t> dims = first.shape().dims();
  dims[static_cast<size_t>(axis)] = concat_dim;
  ODF_CHECK(out->shape() == Shape(dims));

  // outer = product of dims before axis; inner = product after axis.
  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= first.dim(d);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < first.rank(); ++d) inner *= first.dim(d);

  int64_t dest_offset = 0;
  const int64_t out_row = concat_dim * inner;
  for (size_t p = 0; p < count; ++p) {
    const int64_t p_row = parts[p]->dim(axis) * inner;
    for (int64_t o = 0; o < outer; ++o) {
      const float* src = parts[p]->data() + o * p_row;
      float* dst = out->data() + o * out_row + dest_offset;
      std::copy(src, src + p_row, dst);
    }
    dest_offset += p_row;
  }
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  ODF_CHECK(!parts.empty());
  const Tensor& first = parts.front();
  const int64_t resolved = axis < 0 ? axis + first.rank() : axis;
  ODF_CHECK_GE(resolved, 0);
  ODF_CHECK_LT(resolved, first.rank());
  int64_t concat_dim = 0;
  std::vector<const Tensor*> ptrs(parts.size());
  for (size_t p = 0; p < parts.size(); ++p) {
    ptrs[p] = &parts[p];
    concat_dim += parts[p].dim(resolved);
  }
  std::vector<int64_t> dims = first.shape().dims();
  dims[static_cast<size_t>(resolved)] = concat_dim;
  Tensor out{Shape(dims)};
  ConcatInto(ptrs.data(), ptrs.size(), resolved, &out);
  return out;
}

void SliceInto(const Tensor& a, int64_t axis, int64_t start, int64_t len,
               Tensor* out) {
  if (axis < 0) axis += a.rank();
  ODF_CHECK_GE(axis, 0);
  ODF_CHECK_LT(axis, a.rank());
  ODF_CHECK_GE(start, 0);
  ODF_CHECK_GE(len, 0);
  ODF_CHECK_LE(start + len, a.dim(axis));
  std::vector<int64_t> dims = a.shape().dims();
  dims[static_cast<size_t>(axis)] = len;
  ODF_CHECK(out->shape() == Shape(dims));
  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= a.dim(d);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < a.rank(); ++d) inner *= a.dim(d);
  const int64_t src_row = a.dim(axis) * inner;
  const int64_t dst_row = len * inner;
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = a.data() + o * src_row + start * inner;
    float* dst = out->data() + o * dst_row;
    std::copy(src, src + dst_row, dst);
  }
}

Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t len) {
  const int64_t resolved = axis < 0 ? axis + a.rank() : axis;
  ODF_CHECK_GE(resolved, 0);
  ODF_CHECK_LT(resolved, a.rank());
  std::vector<int64_t> dims = a.shape().dims();
  dims[static_cast<size_t>(resolved)] = len;
  Tensor out{Shape(dims)};
  SliceInto(a, resolved, start, len, &out);
  return out;
}

Tensor SumAll(const Tensor& a) {
  // Serial on purpose: a single double accumulator keeps the reduction
  // order (and therefore the rounding) fixed for every thread count.
  double total = 0;
  for (int64_t i = 0; i < a.numel(); ++i) total += a[i];
  return Tensor::Scalar(static_cast<float>(total));
}

Tensor MeanAll(const Tensor& a) {
  ODF_CHECK_GT(a.numel(), 0);
  return Tensor::Scalar(SumAll(a).Item() / static_cast<float>(a.numel()));
}

void SumInto(const Tensor& a, int64_t axis, bool keepdim, Tensor* out) {
  if (axis < 0) axis += a.rank();
  ODF_CHECK_GE(axis, 0);
  ODF_CHECK_LT(axis, a.rank());
  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= a.dim(d);
  const int64_t mid = a.dim(axis);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < a.rank(); ++d) inner *= a.dim(d);

  std::vector<int64_t> dims = a.shape().dims();
  if (keepdim) {
    dims[static_cast<size_t>(axis)] = 1;
  } else {
    dims.erase(dims.begin() + axis);
    if (dims.empty()) dims.push_back(1);
  }
  ODF_CHECK(out->shape() == Shape(dims));
  const float* pa = a.data();
  float* po = out->data();
  // The loops below accumulate; start from a fresh Tensor's zeros.
  std::fill(po, po + out->numel(), 0.0f);
  if (outer > 1) {
    // Each outer slice owns a disjoint output range.
    const int64_t grain =
        std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, mid * inner));
    ParallelFor(outer, grain, [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        for (int64_t m = 0; m < mid; ++m) {
          const float* src = pa + (o * mid + m) * inner;
          float* dst = po + o * inner;
          for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
        }
      }
    });
  } else {
    // Single outer slice: split the contiguous inner range instead; each
    // chunk still accumulates over `mid` in ascending order.
    ParallelFor(inner, kElemGrain / std::max<int64_t>(1, mid),
                [&](int64_t i0, int64_t i1) {
                  for (int64_t m = 0; m < mid; ++m) {
                    const float* src = pa + m * inner;
                    for (int64_t i = i0; i < i1; ++i) po[i] += src[i];
                  }
                });
  }
}

Tensor Sum(const Tensor& a, int64_t axis, bool keepdim) {
  const int64_t resolved = axis < 0 ? axis + a.rank() : axis;
  ODF_CHECK_GE(resolved, 0);
  ODF_CHECK_LT(resolved, a.rank());
  std::vector<int64_t> dims = a.shape().dims();
  if (keepdim) {
    dims[static_cast<size_t>(resolved)] = 1;
  } else {
    dims.erase(dims.begin() + resolved);
    if (dims.empty()) dims.push_back(1);
  }
  Tensor out{Shape(dims)};
  SumInto(a, resolved, keepdim, &out);
  return out;
}

Tensor Mean(const Tensor& a, int64_t axis, bool keepdim) {
  const int64_t resolved = axis < 0 ? axis + a.rank() : axis;
  const float denom = static_cast<float>(a.dim(resolved));
  return MulScalar(Sum(a, axis, keepdim), 1.0f / denom);
}

float MaxValue(const Tensor& a) {
  ODF_CHECK_GT(a.numel(), 0);
  float best = a[0];
  for (int64_t i = 1; i < a.numel(); ++i) best = std::max(best, a[i]);
  return best;
}

float MinValue(const Tensor& a) {
  ODF_CHECK_GT(a.numel(), 0);
  float best = a[0];
  for (int64_t i = 1; i < a.numel(); ++i) best = std::min(best, a[i]);
  return best;
}

template <typename T>
void SoftmaxRowsRaw(const T* in, T* out, int64_t outer, int64_t inner) {
  const int64_t grain =
      std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, inner));
  ParallelFor(outer, grain, [&](int64_t o0, int64_t o1) {
    for (int64_t o = o0; o < o1; ++o) {
      const T* src = in + o * inner;
      T* dst = out + o * inner;
      T max_v = src[0];
      for (int64_t i = 1; i < inner; ++i) max_v = std::max(max_v, src[i]);
      T total = 0;
      for (int64_t i = 0; i < inner; ++i) {
        dst[i] = FastExp(src[i] - max_v);
        total += dst[i];
      }
      const T inv = T(1) / total;
      for (int64_t i = 0; i < inner; ++i) dst[i] *= inv;
    }
  });
}

template void SoftmaxRowsRaw(const float*, float*, int64_t, int64_t);
template void SoftmaxRowsRaw(const double*, double*, int64_t, int64_t);

void SoftmaxLastDimInto(const Tensor& a, Tensor* out) {
  ODF_CHECK_GE(a.rank(), 1);
  const int64_t inner = a.dim(-1);
  ODF_CHECK_GT(inner, 0);
  const int64_t outer = a.numel() / inner;
  ODF_CHECK(out->shape() == a.shape());
  SoftmaxRowsRaw(a.data(), out->data(), outer, inner);
}

Tensor SoftmaxLastDim(const Tensor& a) {
  Tensor out(a.shape());
  SoftmaxLastDimInto(a, &out);
  return out;
}

float SquaredNorm(const Tensor& a) {
  // Serial for the same determinism reason as SumAll.
  double total = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    total += static_cast<double>(a[i]) * a[i];
  }
  return static_cast<float>(total);
}

bool AllClose(const Tensor& a, const Tensor& b, float atol) {
  if (a.shape() != b.shape()) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(a[i] - b[i]) > atol) return false;
  }
  return true;
}

void FusedRecoverInto(const Tensor& r, const Tensor& c, float temperature,
                      Tensor* out) {
  ODF_TRACE_SCOPE("kernel/", "fused_recover", "kernel");
  static Histogram& hist =
      MetricsRegistry::Global().GetHistogram("fused_recover.seconds");
  ScopedTimer timer(hist);
  if (MetricsEnabled()) {
    static Counter& calls =
        MetricsRegistry::Global().GetCounter("fused_recover.calls");
    calls.Add(1);
  }
  ODF_CHECK_EQ(r.rank(), 4);
  ODF_CHECK_EQ(c.rank(), 4);
  const int64_t b = r.dim(0);
  const int64_t n = r.dim(1);
  const int64_t beta = r.dim(2);
  const int64_t k = r.dim(3);
  ODF_CHECK_EQ(c.dim(0), b);
  ODF_CHECK_EQ(c.dim(1), beta);
  const int64_t m = c.dim(2);
  ODF_CHECK_EQ(c.dim(3), k);
  ODF_CHECK(out->shape() == Shape({b, n, m, k}));
  ODF_CHECK_GT(k, 0);
  FusedRecoverRaw(r.data(), c.data(), temperature, out->data(), b, n, m,
                  beta, k);
}

namespace {

// Per-thread scratch for FusedRecoverRaw's flattened exp pass.
template <typename T>
T* RecoverMaxScratch(int64_t len) {
  thread_local std::vector<T> buf;
  if (static_cast<int64_t>(buf.size()) < len) {
    buf.resize(static_cast<size_t>(len));
  }
  return buf.data();
}

}  // namespace

template <typename T>
void FusedRecoverRaw(const T* r, const T* c, T temperature, T* out,
                     int64_t b, int64_t n, int64_t m, int64_t beta,
                     int64_t k) {
  // Histogram depth k is small (single digits in the paper's setups), so
  // per-cell k-loops are too short for the vectorizer. Instead, each
  // (batch, origin) row owns an m·k contiguous slice of both `out` and the
  // destination factor `c`, so every pass below runs flat over that slice:
  // pass 1 tiles the k-vector r[b,o,bb,:] across the row and accumulates
  // with one contiguous FMA loop per beta term, pass 3 is one flat exp,
  // and pass 4 batches the per-cell reciprocals into a single vectorizable
  // divide loop. Every per-element operation (ascending-beta accumulate,
  // temperature scale, max-subtract, FastExp, ascending-k total, inverse
  // scale) keeps the same operands in the same order as the per-cell form,
  // so results are bit-identical to the unfused reference.
  const int64_t rows = b * n;
  const int64_t row_len = m * k;
  const int64_t grain =
      std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, row_len * beta));
  ParallelFor(rows, grain, [&](int64_t r0, int64_t r1) {
    // Scratch: [0, row_len) tiled r-vector, [row_len, 2·row_len) per-element
    // subtrahend / inverse, [2·row_len, 2·row_len + m) per-cell totals.
    T* scratch = RecoverMaxScratch<T>(2 * row_len + m);
    T* tile = scratch;
    T* sub = scratch + row_len;
    T* tot = scratch + 2 * row_len;
    for (int64_t row = r0; row < r1; ++row) {
      const int64_t bi = row / n;
      T* dst = out + row * row_len;
      // Pass 1: scores = temperature * sum_beta r[b,o,bb,:] ⊙ c[b,bb,d,:].
      for (int64_t j = 0; j < row_len; ++j) dst[j] = T(0);
      for (int64_t bb = 0; bb < beta; ++bb) {
        const T* rv = r + (row * beta + bb) * k;
        for (int64_t d = 0; d < m; ++d) {
          std::memcpy(tile + d * k, rv, static_cast<size_t>(k) * sizeof(T));
        }
        const T* cv = c + (bi * beta + bb) * row_len;
        for (int64_t j = 0; j < row_len; ++j) dst[j] += tile[j] * cv[j];
      }
      for (int64_t j = 0; j < row_len; ++j) dst[j] *= temperature;
      // Pass 2: per-cell max, broadcast into the flat subtrahend array.
      for (int64_t cell = 0; cell < m; ++cell) {
        const T* sc = dst + cell * k;
        T max_v = sc[0];
        for (int64_t kk = 1; kk < k; ++kk) max_v = std::max(max_v, sc[kk]);
        T* s = sub + cell * k;
        for (int64_t kk = 0; kk < k; ++kk) s[kk] = max_v;
      }
      // Pass 3: the flat vectorizable exp.
      for (int64_t j = 0; j < row_len; ++j) {
        dst[j] = FastExp(dst[j] - sub[j]);
      }
      // Pass 4: ascending-k totals, one batched divide loop (IEEE division
      // is exact per lane, so batching it does not change any bit), then a
      // flat scale against the tiled inverses.
      for (int64_t cell = 0; cell < m; ++cell) {
        const T* sc = dst + cell * k;
        T total = 0;
        for (int64_t kk = 0; kk < k; ++kk) total += sc[kk];
        tot[cell] = total;
      }
      for (int64_t cell = 0; cell < m; ++cell) tot[cell] = T(1) / tot[cell];
      for (int64_t cell = 0; cell < m; ++cell) {
        T* s = sub + cell * k;
        for (int64_t kk = 0; kk < k; ++kk) s[kk] = tot[cell];
      }
      for (int64_t j = 0; j < row_len; ++j) dst[j] *= sub[j];
    }
  });
}

template void FusedRecoverRaw(const float*, const float*, float, float*,
                              int64_t, int64_t, int64_t, int64_t, int64_t);
template void FusedRecoverRaw(const double*, const double*, double, double*,
                              int64_t, int64_t, int64_t, int64_t, int64_t);

Tensor FusedRecover(const Tensor& r, const Tensor& c, float temperature) {
  ODF_CHECK_EQ(r.rank(), 4);
  ODF_CHECK_EQ(c.rank(), 4);
  Tensor out(Shape({r.dim(0), r.dim(1), c.dim(2), r.dim(3)}));
  FusedRecoverInto(r, c, temperature, &out);
  return out;
}

float FusedRecoverGrad(const Tensor& r, const Tensor& c, float temperature,
                       const Tensor& y, const Tensor& g, Tensor* dr,
                       Tensor* dc) {
  ODF_TRACE_SCOPE("kernel/", "fused_recover_grad", "kernel");
  const int64_t b = r.dim(0);
  const int64_t n = r.dim(1);
  const int64_t beta = r.dim(2);
  const int64_t k = r.dim(3);
  const int64_t m = c.dim(2);
  ODF_CHECK(y.shape() == Shape({b, n, m, k}));
  ODF_CHECK(g.shape() == y.shape());
  ODF_CHECK(dr->shape() == r.shape());
  ODF_CHECK(dc->shape() == c.shape());
  const float* pr = r.data();
  const float* pc = c.data();
  const float* py = y.data();
  const float* pg = g.data();

  // ds = y * (g - sum_k g*y): the softmax adjoint per (b,o,d) cell, i.e. the
  // gradient with respect to the pre-softmax scores.
  Tensor s(y.shape());
  float* ps = s.data();
  const int64_t cells = b * n * m;
  ParallelFor(cells, std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, k)),
              [&](int64_t c0, int64_t c1) {
                for (int64_t cell = c0; cell < c1; ++cell) {
                  const float* yrow = py + cell * k;
                  const float* grow = pg + cell * k;
                  float* srow = ps + cell * k;
                  float dot = 0;
                  for (int64_t kk = 0; kk < k; ++kk) dot += grow[kk] * yrow[kk];
                  for (int64_t kk = 0; kk < k; ++kk) {
                    srow[kk] = yrow[kk] * (grow[kk] - dot);
                  }
                }
              });

  // dr[b,o,beta,k] = temperature * sum_d s[b,o,d,k] * c[b,beta,d,k]; rows
  // (b,o) own disjoint output blocks.
  float* pdr = dr->data();
  ParallelFor(b * n,
              std::max<int64_t>(1, kElemGrain /
                                       std::max<int64_t>(1, beta * m * k)),
              [&](int64_t t0, int64_t t1) {
                for (int64_t t = t0; t < t1; ++t) {
                  const int64_t bi = t / n;
                  const float* srow = ps + t * m * k;
                  float* drow = pdr + t * beta * k;
                  for (int64_t bb = 0; bb < beta; ++bb) {
                    const float* cbase = pc + (bi * beta + bb) * m * k;
                    for (int64_t kk = 0; kk < k; ++kk) {
                      float acc = 0;
                      for (int64_t d = 0; d < m; ++d) {
                        acc += srow[d * k + kk] * cbase[d * k + kk];
                      }
                      drow[bb * k + kk] = temperature * acc;
                    }
                  }
                }
              });

  // dc[b,beta,d,k] = temperature * sum_o s[b,o,d,k] * r[b,o,beta,k];
  // (b,d) pairs own disjoint columns of dc.
  float* pdc = dc->data();
  ParallelFor(b * m,
              std::max<int64_t>(1, kElemGrain /
                                       std::max<int64_t>(1, beta * n * k)),
              [&](int64_t t0, int64_t t1) {
                for (int64_t t = t0; t < t1; ++t) {
                  const int64_t bi = t / m;
                  const int64_t d = t % m;
                  for (int64_t bb = 0; bb < beta; ++bb) {
                    float* drow = pdc + ((bi * beta + bb) * m + d) * k;
                    for (int64_t kk = 0; kk < k; ++kk) {
                      float acc = 0;
                      for (int64_t o = 0; o < n; ++o) {
                        acc += ps[((bi * n + o) * m + d) * k + kk] *
                               pr[((bi * n + o) * beta + bb) * k + kk];
                      }
                      drow[kk] = temperature * acc;
                    }
                  }
                }
              });

  // dtau = sum over cells of (pre-temperature scores) . ds; serial double
  // accumulation keeps the reduction order fixed (same rationale as SumAll).
  double dtau = 0;
  for (int64_t cell = 0; cell < cells; ++cell) {
    const int64_t bi = cell / (n * m);
    const int64_t o = (cell / m) % n;
    const int64_t d = cell % m;
    const float* rrow = pr + (bi * n + o) * beta * k;
    const float* crow = pc + (bi * beta * m + d) * k;
    const float* srow = ps + cell * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      float q = 0;
      for (int64_t bb = 0; bb < beta; ++bb) {
        q += rrow[bb * k + kk] * crow[bb * m * k + kk];
      }
      dtau += static_cast<double>(q) * srow[kk];
    }
  }
  return static_cast<float>(dtau);
}

}  // namespace odf
