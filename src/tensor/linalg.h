#ifndef ODF_TENSOR_LINALG_H_
#define ODF_TENSOR_LINALG_H_

#include "tensor/tensor.h"

namespace odf {

// Small dense linear algebra used by the classic baselines (GP, VAR) and the
// graph substrate (spectral bounds). All matrices are rank-2 Tensors.

/// Cholesky factorization of a symmetric positive-definite matrix `a`
/// (n×n). Returns lower-triangular L with a = L Lᵀ. Aborts if `a` is not
/// positive definite (add jitter to the diagonal first if needed).
Tensor CholeskyFactor(const Tensor& a);

/// Solves L y = b for y (forward substitution). L lower-triangular n×n,
/// b n×m.
Tensor ForwardSubstitute(const Tensor& l, const Tensor& b);

/// Solves Lᵀ x = y for x (back substitution). L lower-triangular n×n, y n×m.
Tensor BackSubstituteTranspose(const Tensor& l, const Tensor& y);

/// Solves a x = b for symmetric positive-definite a (n×n), b (n×m), via
/// Cholesky.
Tensor CholeskySolve(const Tensor& a, const Tensor& b);

/// Solves the ridge-regularized least squares problem
///   min_X || A X - B ||² + lambda ||X||²
/// for A (n×p), B (n×m); returns X (p×m). lambda must be > 0 when AᵀA may be
/// singular.
Tensor RidgeSolve(const Tensor& a, const Tensor& b, float lambda);

/// Largest eigenvalue (by magnitude) of a symmetric matrix via power
/// iteration; deterministic start vector. `iters` iterations.
float PowerIterationMaxEigenvalue(const Tensor& a, int iters = 100);

/// Solves a general square system a x = b with partial-pivot Gaussian
/// elimination. a (n×n), b (n×m). Aborts on (numerically) singular a.
Tensor GaussianSolve(const Tensor& a, const Tensor& b);

}  // namespace odf

#endif  // ODF_TENSOR_LINALG_H_
