#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

namespace odf {

std::string Shape::ToString() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < dims_.size(); ++i) {
    os << (i == 0 ? "" : ", ") << dims_[i];
  }
  os << ']';
  return os.str();
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = value;
  return t;
}

Tensor Tensor::Identity(int64_t n) {
  Tensor t(Shape({n, n}));
  for (int64_t i = 0; i < n; ++i) t.At2(i, i) = 1.0f;
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t(Shape({n}));
  for (int64_t i = 0; i < n; ++i) t[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::RandomUniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::RandomNormal(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.Gaussian(mean, stddev));
  }
  return t;
}

Tensor Tensor::GlorotUniform(Shape shape, Rng& rng) {
  ODF_CHECK_GE(shape.rank(), 2);
  const int64_t fan_in = shape.dim(-2);
  const int64_t fan_out = shape.dim(-1);
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandomUniform(std::move(shape), rng, -limit, limit);
}

float& Tensor::At(const std::vector<int64_t>& index) {
  ODF_CHECK_EQ(static_cast<int64_t>(index.size()), rank());
  const auto strides = shape_.Strides();
  int64_t flat = 0;
  for (size_t i = 0; i < index.size(); ++i) {
    ODF_DCHECK(index[i] >= 0 && index[i] < shape_.dims()[i]);
    flat += index[i] * strides[i];
  }
  return data_[static_cast<size_t>(flat)];
}

float Tensor::At(const std::vector<int64_t>& index) const {
  return const_cast<Tensor*>(this)->At(index);
}

std::vector<int64_t> Tensor::ResolveDims(std::vector<int64_t> dims) const {
  int64_t known = 1;
  int64_t infer_pos = -1;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (dims[i] == -1) {
      ODF_CHECK_EQ(infer_pos, -1) << "at most one -1 dim";
      infer_pos = static_cast<int64_t>(i);
    } else {
      ODF_CHECK_GE(dims[i], 0);
      known *= dims[i];
    }
  }
  if (infer_pos >= 0) {
    ODF_CHECK_GT(known, 0);
    ODF_CHECK_EQ(numel() % known, 0)
        << "cannot infer dim for reshape of " << shape_.ToString();
    dims[static_cast<size_t>(infer_pos)] = numel() / known;
  }
  return dims;
}

Tensor Tensor::Reshape(std::vector<int64_t> dims) const& {
  dims = ResolveDims(std::move(dims));
  Shape new_shape(dims);
  ODF_CHECK_EQ(new_shape.numel(), numel())
      << "reshape " << shape_.ToString() << " -> " << new_shape.ToString();
  return Tensor(std::move(new_shape), data_);
}

Tensor Tensor::Reshape(std::vector<int64_t> dims) && {
  dims = ResolveDims(std::move(dims));
  Shape new_shape(dims);
  ODF_CHECK_EQ(new_shape.numel(), numel())
      << "reshape " << shape_.ToString() << " -> " << new_shape.ToString();
  return Tensor(std::move(new_shape), std::move(data_));
}

std::string Tensor::ToString() const {
  std::ostringstream os;
  os << "Tensor" << shape_.ToString() << " {";
  const int64_t limit = 32;
  for (int64_t i = 0; i < numel() && i < limit; ++i) {
    os << (i == 0 ? "" : ", ") << data_[static_cast<size_t>(i)];
  }
  if (numel() > limit) os << ", ...";
  os << '}';
  return os.str();
}

}  // namespace odf
