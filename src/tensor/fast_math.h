#ifndef ODF_TENSOR_FAST_MATH_H_
#define ODF_TENSOR_FAST_MATH_H_

#include <bit>
#include <cstdint>
#include <limits>

namespace odf {

/// Vectorizable float exp.
///
/// `std::exp` compiles to a libm call, which blocks auto-vectorization of
/// every elementwise loop that uses it (the scalar `exp` kernel measured
/// 0.29 GFLOPs in BENCH_substrate.json). This routine is branch-free on its
/// main path — range reduction x = n·ln2 + r, a degree-6 polynomial for
/// e^r, and exponent reassembly via bit twiddling — so the compiler turns
/// `Unary(a, FastExp)` into SIMD code.
///
/// Accuracy: within kFastExpMaxUlp ULP of `std::exp` over the whole finite
/// range (asserted against std::exp by tensor_test). Out-of-range inputs
/// saturate: +inf above ~88.72, exact 0 below ~-87.34 (results stay normal
/// floats); NaN propagates.
constexpr int kFastExpMaxUlp = 8;

inline float FastExp(float x) {
  constexpr float kLog2e = 1.44269504088896341f;
  // ln2 split high/low so r = x − n·ln2 is computed with extra precision.
  constexpr float kLn2Hi = 0.693359375f;
  constexpr float kLn2Lo = -2.12194440e-4f;
  constexpr float kOverflow = 88.722839f;    // exp(x) > FLT_MAX above this
  constexpr float kUnderflow = -87.336544f;  // exp(x) subnormal below this
  if (x > kOverflow) return std::numeric_limits<float>::infinity();
  if (!(x >= kUnderflow)) return x != x ? x : 0.0f;  // NaN in, NaN out

  // Round-to-nearest n = x/ln2 via the 1.5·2^23 magic-constant trick
  // (valid because |x·log2e| < 2^22 here); no libm rint, vectorizes.
  constexpr float kRoundMagic = 12582912.0f;  // 1.5 * 2^23
  const float shifted = x * kLog2e + kRoundMagic;
  const float n = shifted - kRoundMagic;
  const int32_t ni = static_cast<int32_t>(n);

  const float r = (x - n * kLn2Hi) - n * kLn2Lo;
  // Degree-6 Taylor/Horner for e^r on |r| ≤ ln2/2 (error < 1 ULP there).
  float p = 1.0f / 720.0f;
  p = p * r + 1.0f / 120.0f;
  p = p * r + 1.0f / 24.0f;
  p = p * r + 1.0f / 6.0f;
  p = p * r + 0.5f;
  p = p * r + 1.0f;
  p = p * r + 1.0f;

  // 2^n in two halves: n can reach 128 (x just under overflow), which does
  // not fit one biased exponent, but two factors of 2^(n/2) always do.
  const int32_t n1 = ni / 2;
  const int32_t n2 = ni - n1;
  const float s1 = std::bit_cast<float>(static_cast<uint32_t>(n1 + 127) << 23);
  const float s2 = std::bit_cast<float>(static_cast<uint32_t>(n2 + 127) << 23);
  return p * s1 * s2;
}

/// Sigmoid on top of FastExp: 1 / (1 + e^{-x}).
inline float FastSigmoid(float x) { return 1.0f / (1.0f + FastExp(-x)); }

/// Tanh on top of FastExp: sign(x) · (e^{2|x|} − 1) / (e^{2|x|} + 1).
/// Using −2|x| keeps the exp argument non-positive (no overflow) and the
/// division well-conditioned; |x| ≥ 10 saturates to ±1 (as float tanh does).
inline float FastTanh(float x) {
  const float ax = x < 0.0f ? -x : x;
  if (!(ax < 10.0f)) return x != x ? x : (x < 0.0f ? -1.0f : 1.0f);
  const float u = FastExp(-2.0f * ax);
  const float t = (1.0f - u) / (1.0f + u);
  return x < 0.0f ? -t : t;
}

}  // namespace odf

#endif  // ODF_TENSOR_FAST_MATH_H_
