#ifndef ODF_TENSOR_FAST_MATH_H_
#define ODF_TENSOR_FAST_MATH_H_

#include <bit>
#include <cstdint>
#include <limits>

namespace odf {

/// Vectorizable float exp.
///
/// `std::exp` compiles to a libm call, which blocks auto-vectorization of
/// every elementwise loop that uses it (the scalar `exp` kernel measured
/// 0.29 GFLOPs in BENCH_substrate.json). This routine is fully branch-free —
/// range reduction x = n·ln2 + r, a degree-6 polynomial for e^r, exponent
/// reassembly via bit twiddling, and the out-of-range cases handled by
/// clamping the input and selecting the saturated result at the end (no
/// early returns) — so the compiler if-converts and turns `Unary(a,
/// FastExp)` into SIMD code.
///
/// Accuracy: within kFastExpMaxUlp ULP of `std::exp` over the whole finite
/// range (asserted against std::exp by tensor_test). Out-of-range inputs
/// saturate: +inf above ~88.72, exact 0 below ~-87.34 (results stay normal
/// floats); NaN propagates.
constexpr int kFastExpMaxUlp = 8;

inline float FastExp(float x) {
  constexpr float kLog2e = 1.44269504088896341f;
  // ln2 split high/low so r = x − n·ln2 is computed with extra precision.
  constexpr float kLn2Hi = 0.693359375f;
  constexpr float kLn2Lo = -2.12194440e-4f;
  constexpr float kOverflow = 88.722839f;    // exp(x) > FLT_MAX above this
  constexpr float kUnderflow = -87.336544f;  // exp(x) subnormal below this
  // Clamp instead of early-returning: in-range x passes through unchanged
  // (bit-identical main path), out-of-range/NaN x is pinned to a finite
  // value so the int cast below never sees NaN, and the true result is
  // selected branch-free at the end.
  const float xc =
      !(x >= kUnderflow) ? kUnderflow : (x > kOverflow ? kOverflow : x);

  // Round-to-nearest n = x/ln2 via the 1.5·2^23 magic-constant trick
  // (valid because |x·log2e| < 2^22 here); no libm rint, vectorizes.
  constexpr float kRoundMagic = 12582912.0f;  // 1.5 * 2^23
  const float shifted = xc * kLog2e + kRoundMagic;
  const float n = shifted - kRoundMagic;
  const int32_t ni = static_cast<int32_t>(n);

  const float r = (xc - n * kLn2Hi) - n * kLn2Lo;
  // Degree-6 Taylor/Horner for e^r on |r| ≤ ln2/2 (error < 1 ULP there).
  float p = 1.0f / 720.0f;
  p = p * r + 1.0f / 120.0f;
  p = p * r + 1.0f / 24.0f;
  p = p * r + 1.0f / 6.0f;
  p = p * r + 0.5f;
  p = p * r + 1.0f;
  p = p * r + 1.0f;

  // 2^n in two halves: n can reach 128 (x just under overflow), which does
  // not fit one biased exponent, but two factors of 2^(n/2) always do.
  const int32_t n1 = ni / 2;
  const int32_t n2 = ni - n1;
  const float s1 = std::bit_cast<float>(static_cast<uint32_t>(n1 + 127) << 23);
  const float s2 = std::bit_cast<float>(static_cast<uint32_t>(n2 + 127) << 23);
  float out = p * s1 * s2;
  out = !(x >= kUnderflow) ? 0.0f : out;  // exact 0 below the subnormal edge
  out = x > kOverflow ? std::numeric_limits<float>::infinity() : out;
  return x != x ? x : out;  // NaN in, NaN out
}

/// Double-width FastExp for the fp64 reference serving plan
/// (serve/forward_plan.h). Same construction as the float kernel — magic-
/// constant round-to-nearest, Cody–Waite range reduction, Horner polynomial,
/// two-half exponent reassembly — widened to double: the ln2 split carries
/// ~42 extra residual bits and the polynomial runs to degree 13, whose
/// truncation error (r^14/14! ≲ 5e-18 on |r| ≤ ln2/2) sits below half an
/// ulp of the result. Verified within kFastExpMaxUlpF64 ulp of std::exp
/// over the finite range by tensor_test; saturation/NaN contract matches
/// the float kernel.
constexpr int kFastExpMaxUlpF64 = 8;

inline double FastExp(double x) {
  constexpr double kLog2e = 1.4426950408889634074;
  // ln2 split so r = x − n·ln2 keeps ~42 guard bits through the subtraction.
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  constexpr double kOverflow = 709.782712893384;    // exp(x) > DBL_MAX above
  constexpr double kUnderflow = -708.396418532264;  // exp(x) subnormal below
  // Branch-free out-of-range handling, mirroring the float kernel: clamp so
  // the main path (and the int cast) only ever sees finite values, select
  // the saturated result at the end.
  const double xc =
      !(x >= kUnderflow) ? kUnderflow : (x > kOverflow ? kOverflow : x);

  // Round-to-nearest n = x/ln2 via the 1.5·2^52 magic constant (valid
  // because |x·log2e| < 2^11 here); no libm rint, vectorizes.
  constexpr double kRoundMagic = 6755399441055744.0;  // 1.5 * 2^52
  const double shifted = xc * kLog2e + kRoundMagic;
  const double n = shifted - kRoundMagic;
  const int64_t ni = static_cast<int64_t>(n);

  const double r = (xc - n * kLn2Hi) - n * kLn2Lo;
  // Degree-13 Taylor/Horner for e^r on |r| ≤ ln2/2.
  double p = 1.0 / 6227020800.0;  // 1/13!
  p = p * r + 1.0 / 479001600.0;
  p = p * r + 1.0 / 39916800.0;
  p = p * r + 1.0 / 3628800.0;
  p = p * r + 1.0 / 362880.0;
  p = p * r + 1.0 / 40320.0;
  p = p * r + 1.0 / 5040.0;
  p = p * r + 1.0 / 720.0;
  p = p * r + 1.0 / 120.0;
  p = p * r + 1.0 / 24.0;
  p = p * r + 1.0 / 6.0;
  p = p * r + 0.5;
  p = p * r + 1.0;
  p = p * r + 1.0;

  // 2^n in two halves: n can reach 1024, which does not fit one biased
  // exponent, but two factors of 2^(n/2) always do.
  const int64_t n1 = ni / 2;
  const int64_t n2 = ni - n1;
  const double s1 =
      std::bit_cast<double>(static_cast<uint64_t>(n1 + 1023) << 52);
  const double s2 =
      std::bit_cast<double>(static_cast<uint64_t>(n2 + 1023) << 52);
  double out = p * s1 * s2;
  out = !(x >= kUnderflow) ? 0.0 : out;  // exact 0 below the subnormal edge
  out = x > kOverflow ? std::numeric_limits<double>::infinity() : out;
  return x != x ? x : out;  // NaN in, NaN out
}

/// Sigmoid on top of FastExp: 1 / (1 + e^{-x}).
inline float FastSigmoid(float x) { return 1.0f / (1.0f + FastExp(-x)); }
inline double FastSigmoid(double x) { return 1.0 / (1.0 + FastExp(-x)); }

/// Tanh on top of FastExp: sign(x) · (e^{2|x|} − 1) / (e^{2|x|} + 1).
/// Using −2|x| keeps the exp argument non-positive (no overflow) and the
/// division well-conditioned; |x| ≥ 10 saturates to ±1 (as float tanh does).
/// Branch-free like FastExp: the saturated tail is clamped through the main
/// path and the result selected at the end, so gate loops vectorize.
inline float FastTanh(float x) {
  const float ax = x < 0.0f ? -x : x;
  const float axc = ax < 10.0f ? ax : 10.0f;  // NaN also pins to 10
  const float u = FastExp(-2.0f * axc);
  const float t = (1.0f - u) / (1.0f + u);
  float out = ax < 10.0f ? t : 1.0f;
  out = x < 0.0f ? -out : out;
  return x != x ? x : out;
}

/// Double tanh; saturation moves out to |x| ≥ 20 (tanh(20) is within one
/// double ulp of 1).
inline double FastTanh(double x) {
  const double ax = x < 0.0 ? -x : x;
  const double axc = ax < 20.0 ? ax : 20.0;  // NaN also pins to 20
  const double u = FastExp(-2.0 * axc);
  const double t = (1.0 - u) / (1.0 + u);
  double out = ax < 20.0 ? t : 1.0;
  out = x < 0.0 ? -out : out;
  return x != x ? x : out;
}

}  // namespace odf

#endif  // ODF_TENSOR_FAST_MATH_H_
