#include "tensor/csr.h"

#include <algorithm>
#include <cstring>

#include "tensor/tensor_ops.h"
#include "util/env_config.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace odf {
namespace {

// Feature-tile width of the SpMM kernel: the accumulator block lives in a
// stack array (vector registers once the loop is unrolled), so each x-row
// visit costs only loads and FMAs — no read-modify-write of the output.
constexpr int64_t kFTile = 32;

// Minimum multiply-adds per parallel chunk (same rationale as the dense
// substrate's kElemGrain: below this the dispatch overhead dominates).
constexpr int64_t kSpmmGrainFlops = 1 << 14;

}  // namespace

CsrMatrix CsrMatrix::FromDense(const Tensor& dense) {
  ODF_CHECK_EQ(dense.rank(), 2);
  CsrMatrix m;
  m.rows_ = dense.dim(0);
  m.cols_ = dense.dim(1);
  ODF_CHECK_LE(m.cols_, static_cast<int64_t>(INT32_MAX));
  m.row_ptr_.assign(static_cast<size_t>(m.rows_) + 1, 0);
  const float* p = dense.data();
  for (int64_t i = 0; i < m.rows_; ++i) {
    const float* row = p + i * m.cols_;
    for (int64_t j = 0; j < m.cols_; ++j) {
      if (row[j] != 0.0f) {
        m.col_idx_.push_back(static_cast<int32_t>(j));
        m.values_.push_back(row[j]);
      }
    }
    m.row_ptr_[static_cast<size_t>(i) + 1] =
        static_cast<int64_t>(m.values_.size());
  }
  return m;
}

CsrMatrix CsrMatrix::Transpose() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(static_cast<size_t>(t.rows_) + 1, 0);
  t.col_idx_.resize(values_.size());
  t.values_.resize(values_.size());
  // Counting sort by column: a stable pass over the row-ordered input
  // leaves each transposed row in ascending column order.
  for (const int32_t j : col_idx_) ++t.row_ptr_[static_cast<size_t>(j) + 1];
  for (size_t i = 1; i < t.row_ptr_.size(); ++i) {
    t.row_ptr_[i] += t.row_ptr_[i - 1];
  }
  std::vector<int64_t> fill(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t idx = row_ptr_[static_cast<size_t>(i)];
         idx < row_ptr_[static_cast<size_t>(i) + 1]; ++idx) {
      const size_t j = static_cast<size_t>(col_idx_[static_cast<size_t>(idx)]);
      const int64_t dst = fill[j]++;
      t.col_idx_[static_cast<size_t>(dst)] = static_cast<int32_t>(i);
      t.values_[static_cast<size_t>(dst)] = values_[static_cast<size_t>(idx)];
    }
  }
  return t;
}

Tensor CsrMatrix::ToDense() const {
  Tensor dense(Shape({rows_, cols_}));
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t idx = row_ptr_[static_cast<size_t>(i)];
         idx < row_ptr_[static_cast<size_t>(i) + 1]; ++idx) {
      dense.At2(i, col_idx_[static_cast<size_t>(idx)]) =
          values_[static_cast<size_t>(idx)];
    }
  }
  return dense;
}

// How the row accumulator acc = Σ_j a[i,j]·x[b,j,:] lands in the output.
enum class SpmmEpilogue {
  kStore,        // out = acc
  kChebCombine,  // out = 2·acc − other     (forward recurrence step)
  kAddTwice,     // out += 2·acc            (reverse recurrence step)
  kAddOther,     // out = acc + other       (final gradient combine)
};

// Core CSR × dense kernel over strided row views, templated on the scalar
// type (the double instantiation backs the fp64 reference serving plan; the
// float one is the substrate path). `x`, `other` and `out` address row
// (b, i) at base + (b·n + i)·ld — so a feature-column slice of a larger
// tensor can be read or written in place (ld = the enclosing row width).
// `other` is only dereferenced by the epilogues that use it. Accumulation
// per output element is in ascending column order of `a`, independent of
// thread count.
template <SpmmEpilogue kEp, bool kSerial, typename T>
void SpmmTiledRaw(const int64_t* rp, const int32_t* ci, const T* av,
                  int64_t rows, int64_t cols, int64_t nnz, int64_t batch,
                  int64_t f, const T* x, int64_t ldx, const T* other,
                  int64_t ldother, T* out, int64_t ldo) {
  if (f == 0 || batch == 0) return;
  const int64_t flops_per_row =
      std::max<int64_t>(1, 2 * nnz / std::max<int64_t>(1, rows) * f);
  // kSerial callers (the compiled serving path) run the whole range inline:
  // chunk partitioning never changes per-element results, only who computes
  // them, so this is purely a dispatch-cost decision.
  const int64_t grain =
      kSerial ? batch * rows
              : std::max<int64_t>(1, kSpmmGrainFlops / flops_per_row);
  ParallelFor(batch * rows, grain, [&](int64_t t0, int64_t t1) {
    T acc[kFTile];
    for (int64_t t = t0; t < t1; ++t) {
      const int64_t b = t / rows;
      const int64_t i = t % rows;
      const T* __restrict xb = x + b * cols * ldx;
      T* __restrict orow = out + (b * rows + i) * ldo;
      const T* __restrict vrow =
          other != nullptr ? other + (b * rows + i) * ldother : nullptr;
      const int64_t begin = rp[i];
      const int64_t end = rp[i + 1];
      for (int64_t f0 = 0; f0 < f; f0 += kFTile) {
        const int64_t fw = std::min(kFTile, f - f0);
        // `width` must be a compile-time constant on the full-tile path so
        // the accumulator block registerizes across the nonzero loop (a
        // runtime bound forces acc through the stack every iteration).
        auto accumulate = [&]<bool kFull>(int64_t width) {
          if constexpr (kFull) width = kFTile;
          for (int64_t c = 0; c < width; ++c) acc[c] = T(0);
          for (int64_t idx = begin; idx < end; ++idx) {
            const T v = av[idx];
            const T* __restrict xrow =
                xb + static_cast<int64_t>(ci[idx]) * ldx + f0;
            for (int64_t c = 0; c < width; ++c) {
              acc[c] = ODF_FMADD(v, xrow[c], acc[c]);
            }
          }
          for (int64_t c = 0; c < width; ++c) {
            if constexpr (kEp == SpmmEpilogue::kStore) {
              orow[f0 + c] = acc[c];
            } else if constexpr (kEp == SpmmEpilogue::kChebCombine) {
              orow[f0 + c] = T(2) * acc[c] - vrow[f0 + c];
            } else if constexpr (kEp == SpmmEpilogue::kAddTwice) {
              orow[f0 + c] += T(2) * acc[c];
            } else {
              orow[f0 + c] = acc[c] + vrow[f0 + c];
            }
          }
        };
        if (fw == kFTile) {
          accumulate.template operator()<true>(kFTile);
        } else {
          accumulate.template operator()<false>(fw);
        }
      }
    }
  });
}

// CsrMatrix-facade wrapper over the raw core (float substrate path).
template <SpmmEpilogue kEp, bool kSerial = false>
void SpmmTiled(const CsrMatrix& a, int64_t batch, int64_t f,
               const float* x, int64_t ldx, const float* other,
               int64_t ldother, float* out, int64_t ldo) {
  SpmmTiledRaw<kEp, kSerial>(a.row_ptr().data(), a.col_idx().data(),
                             a.values().data(), a.rows(), a.cols(), a.nnz(),
                             batch, f, x, ldx, other, ldother, out, ldo);
}

Tensor SpMM(const CsrMatrix& a, const Tensor& x) {
  ODF_TRACE_SCOPE("kernel/", "spmm", "kernel");
  static Histogram& spmm_hist =
      MetricsRegistry::Global().GetHistogram("spmm.seconds");
  ScopedTimer timer(spmm_hist);
  if (MetricsEnabled()) {
    static Counter& calls = MetricsRegistry::Global().GetCounter("spmm.calls");
    calls.Add(1);
  }
  const bool squeeze = x.rank() == 2;
  ODF_CHECK(x.rank() == 2 || x.rank() == 3);
  const int64_t batch = squeeze ? 1 : x.dim(0);
  const int64_t n = squeeze ? x.dim(0) : x.dim(1);
  const int64_t f = squeeze ? x.dim(1) : x.dim(2);
  ODF_CHECK_EQ(n, a.cols()) << "spmm " << a.rows() << "x" << a.cols()
                            << " x " << x.shape().ToString();
  Tensor out(squeeze ? Shape({a.rows(), f})
                     : Shape({batch, a.rows(), f}));
  if (a.nnz() == 0 || f == 0) return out;
  SpmmTiled<SpmmEpilogue::kStore>(a, batch, f, x.data(), f, nullptr, 0,
                                  out.data(), f);
  return out;
}

namespace {

// Row-wise strided copy: dst row (b·n + i)·ld_dst ⟵ src row (b·n + i)·ld_src,
// f floats each.
void CopyRows(int64_t rows, int64_t f, const float* src, int64_t ld_src,
              float* dst, int64_t ld_dst) {
  ParallelFor(rows, std::max<int64_t>(1, kSpmmGrainFlops / std::max<int64_t>(1, f)),
              [&](int64_t t0, int64_t t1) {
                for (int64_t t = t0; t < t1; ++t) {
                  std::memcpy(dst + t * ld_dst, src + t * ld_src,
                              static_cast<size_t>(f) * sizeof(float));
                }
              });
}

}  // namespace

void ChebyshevBasisInto(const GraphOperator& op, const Tensor& x,
                        int64_t order, Tensor* out) {
  ODF_TRACE_SCOPE("kernel/", "cheb_basis", "kernel");
  static Histogram& cheb_hist =
      MetricsRegistry::Global().GetHistogram("cheb_basis.seconds");
  ScopedTimer timer(cheb_hist);
  ODF_CHECK_GT(order, 0);
  ODF_CHECK_EQ(x.rank(), 3);
  const int64_t batch = x.dim(0);
  const int64_t n = x.dim(1);
  const int64_t f = x.dim(2);
  ODF_CHECK_EQ(n, op.nodes());
  ODF_CHECK(out->shape() == Shape({batch, n, order * f}));
  const int64_t ld = order * f;
  float* po = out->data();
  CopyRows(batch * n, f, x.data(), f, po, ld);  // T_1 = x
  if (order == 1 || f == 0) return;

  if (op.use_sparse()) {
    const CsrMatrix& a = op.csr();
    // T_2 = L̂·T_1, then T_s = 2·L̂·T_{s-1} − T_{s-2}, every tap read from
    // and written to its feature-column slice of `out` in place.
    SpmmTiled<SpmmEpilogue::kStore>(a, batch, f, x.data(), f, nullptr, 0,
                                    po + f, ld);
    for (int64_t s = 2; s < order; ++s) {
      SpmmTiled<SpmmEpilogue::kChebCombine>(a, batch, f, po + (s - 1) * f, ld,
                                            po + (s - 2) * f, ld, po + s * f,
                                            ld);
    }
    return;
  }

  // Dense path: the blocked GEMM needs contiguous operands, so keep the two
  // most recent taps in contiguous buffers and fuse the 2·(L̂T) − T_{s-2}
  // combine with the write into the slice.
  Tensor prev2 = x;                          // T_{s-2}, contiguous
  Tensor prev = BatchMatMul(op.dense(), x);  // T_{s-1}, contiguous
  CopyRows(batch * n, f, prev.data(), f, po + f, ld);
  for (int64_t s = 2; s < order; ++s) {
    const Tensor lt = BatchMatMul(op.dense(), prev);
    Tensor cur(Shape({batch, n, f}));
    const float* plt = lt.data();
    const float* pp2 = prev2.data();
    float* pc = cur.data();
    ParallelFor(batch * n * f, kSpmmGrainFlops, [&](int64_t e0, int64_t e1) {
      for (int64_t e = e0; e < e1; ++e) pc[e] = 2.0f * plt[e] - pp2[e];
    });
    CopyRows(batch * n, f, pc, f, po + s * f, ld);
    prev2 = std::move(prev);
    prev = std::move(cur);
  }
}

template <typename T>
void ChebyshevBasisWideRaw(const T* dense, const int64_t* row_ptr,
                           const int32_t* col_idx, const T* values,
                           int64_t nnz, int64_t n, const T* x, int64_t batch,
                           int64_t f, int64_t order, T* out, T* w0, T* w1,
                           T* w2) {
  const int64_t ld = order * f;
  const T* px = x;
  T* po = out;
  if (order == 1 || f == 0) {
    for (int64_t t = 0; t < batch * n; ++t) {
      std::memcpy(po + t * ld, px + t * f,
                  static_cast<size_t>(f) * sizeof(T));
    }
    return;
  }

  const int64_t wide = batch * f;
  T* bufs[3] = {w0, w1, w2};

  // With one batch element the wide node-major layout coincides with x's own
  // [n, f] layout, so the transpose-in would be a verbatim copy: tap 0 reads
  // x directly instead. (bufs[0] still serves as the s=3 cycle slot.)
  const bool direct_t0 = batch == 1;
  const auto tap0 = [&]() -> const T* { return direct_t0 ? px : bufs[0]; };

  // The per-row copies below move only a handful of elements each (f is a
  // feature count, typically 7–21), so a library memcpy call per row would
  // dominate the whole basis. Inline element loops keep them in-register.
  //
  // One pass over x does double duty: T_1 lands in its feature-column slice
  // of `out`, and the transpose-in fills bufs[0][i, b·f + c] = x[b, i, c] —
  // node-major, so every SpMM row visit streams `wide` contiguous elements.
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t i = 0; i < n; ++i) {
      const T* __restrict src = px + (b * n + i) * f;
      T* __restrict t1 = po + (b * n + i) * ld;
      if (direct_t0) {
        for (int64_t c = 0; c < f; ++c) t1[c] = src[c];
      } else {
        T* __restrict tr = bufs[0] + i * wide + b * f;
        for (int64_t c = 0; c < f; ++c) {
          t1[c] = src[c];
          tr[c] = src[c];
        }
      }
    }
  }
  // Scatter a wide tap back into feature-column slice `s` of `out`. Reads
  // stream through `tap` (i-major) while writes stride by `ld`.
  const auto scatter = [&](const T* tap, int64_t s) {
    for (int64_t i = 0; i < n; ++i) {
      const T* __restrict trow = tap + i * wide;
      for (int64_t b = 0; b < batch; ++b) {
        T* __restrict dst = po + (b * n + i) * ld + s * f;
        for (int64_t c = 0; c < f; ++c) dst[c] = trow[b * f + c];
      }
    }
  };

  // T_2 = L̂·T_1, then T_s = 2·L̂·T_{s-1} − T_{s-2}, all in wide layout.
  if (dense != nullptr) {
    // Dense graph: one blocked [n,n] x [n,wide] GEMM per tap keeps the full
    // register-tile accumulator block hot — far higher throughput than the
    // row-chained SpMM on a dense operator. Zero-skip transparency plus the
    // shared fused-accumulation policy (ODF_FMADD) makes the result bit-
    // identical to the CSR path. The 2·(L̂T) − T_{s-2} combine runs as a
    // separate in-place pass; 2·x is exact, so the subtraction rounds once
    // either way and matches the SpMM's fused epilogue bit-for-bit.
    for (int64_t s = 1; s < order; ++s) {
      T* cur = bufs[s % 3];
      std::fill(cur, cur + n * wide, T(0));
      GemmRawInto(dense, s == 1 ? tap0() : bufs[(s - 1) % 3], cur, n, n,
                  wide);
      if (s >= 2) {
        // Combine fused into the scatter: one pass computes 2·(L̂T) − T_{s-2}
        // (identical arithmetic and rounding to the separate pass) and
        // writes it both back into `cur` — the recurrence needs T_s — and
        // into the output slice.
        const T* __restrict p2 = s == 2 ? tap0() : bufs[(s - 2) % 3];
        for (int64_t i = 0; i < n; ++i) {
          T* __restrict crow = cur + i * wide;
          const T* __restrict prow = p2 + i * wide;
          for (int64_t b = 0; b < batch; ++b) {
            T* __restrict dst = po + (b * n + i) * ld + s * f;
            for (int64_t c = 0; c < f; ++c) {
              const T v = T(2) * crow[b * f + c] - prow[b * f + c];
              crow[b * f + c] = v;
              dst[c] = v;
            }
          }
        }
      } else {
        scatter(cur, s);
      }
    }
    return;
  }

  SpmmTiledRaw<SpmmEpilogue::kStore, /*kSerial=*/true>(
      row_ptr, col_idx, values, n, n, nnz, 1, wide, tap0(), wide,
      static_cast<const T*>(nullptr), 0, bufs[1], wide);
  scatter(bufs[1], 1);
  for (int64_t s = 2; s < order; ++s) {
    SpmmTiledRaw<SpmmEpilogue::kChebCombine, /*kSerial=*/true>(
        row_ptr, col_idx, values, n, n, nnz, 1, wide, bufs[(s - 1) % 3],
        wide, s == 2 ? tap0() : bufs[(s - 2) % 3], wide, bufs[s % 3], wide);
    scatter(bufs[s % 3], s);
  }
}

template void ChebyshevBasisWideRaw(const float*, const int64_t*,
                                    const int32_t*, const float*, int64_t,
                                    int64_t, const float*, int64_t, int64_t,
                                    int64_t, float*, float*, float*, float*);
template void ChebyshevBasisWideRaw(const double*, const int64_t*,
                                    const int32_t*, const double*, int64_t,
                                    int64_t, const double*, int64_t, int64_t,
                                    int64_t, double*, double*, double*,
                                    double*);

void ChebyshevBasisWideInto(const GraphOperator& op, const Tensor& x,
                            int64_t order, Tensor* out, Tensor* w0,
                            Tensor* w1, Tensor* w2) {
  ODF_CHECK_GT(order, 0);
  ODF_CHECK_EQ(x.rank(), 3);
  const int64_t batch = x.dim(0);
  const int64_t n = x.dim(1);
  const int64_t f = x.dim(2);
  ODF_CHECK_EQ(n, op.nodes());
  ODF_CHECK(out->shape() == Shape({batch, n, order * f}));
  if (order > 1 && f > 0) {
    ODF_CHECK_GE(w0->numel(), n * batch * f);
    ODF_CHECK_GE(w1->numel(), n * batch * f);
    ODF_CHECK_GE(w2->numel(), n * batch * f);
  }
  const CsrMatrix& a = op.csr();
  ChebyshevBasisWideRaw(op.use_sparse() ? nullptr : op.dense().data(),
                        a.row_ptr().data(), a.col_idx().data(),
                        a.values().data(), a.nnz(), n, x.data(), batch, f,
                        order, out->data(), w0->data(), w1->data(),
                        w2->data());
}

Tensor ChebyshevBasis(const GraphOperator& op, const Tensor& x,
                      int64_t order) {
  ODF_CHECK_GT(order, 0);
  ODF_CHECK_EQ(x.rank(), 3);
  Tensor out(Shape({x.dim(0), x.dim(1), order * x.dim(2)}));
  ChebyshevBasisInto(op, x, order, &out);
  return out;
}

Tensor ChebyshevBasisGrad(const GraphOperator& op, const Tensor& grad,
                          int64_t order) {
  ODF_TRACE_SCOPE("kernel/", "cheb_basis_grad", "kernel");
  static Histogram& cheb_grad_hist =
      MetricsRegistry::Global().GetHistogram("cheb_basis_grad.seconds");
  ScopedTimer timer(cheb_grad_hist);
  ODF_CHECK_GT(order, 0);
  ODF_CHECK_EQ(grad.rank(), 3);
  const int64_t batch = grad.dim(0);
  const int64_t n = grad.dim(1);
  ODF_CHECK_EQ(n, op.nodes());
  ODF_CHECK_EQ(grad.dim(2) % order, 0);
  const int64_t f = grad.dim(2) / order;
  if (order == 1) return grad;
  const int64_t ld = order * f;
  Tensor gx(Shape({batch, n, f}));
  if (f == 0) return gx;

  // Reverse recurrence over tap gradients G_s (slice s−1 of a working
  // copy):  G_{s-1} += 2·L̂ᵀ·G_s,  G_{s-2} −= G_s  for s = order..3, then
  // dX = G_1 + L̂ᵀ·G_2.
  Tensor g = grad;
  float* pg = g.data();

  if (op.use_sparse()) {
    const CsrMatrix& at = op.csr_transpose();
    for (int64_t s = order; s >= 3; --s) {
      SpmmTiled<SpmmEpilogue::kAddTwice>(at, batch, f, pg + (s - 1) * f, ld,
                                         nullptr, 0, pg + (s - 2) * f, ld);
      float* psub = pg + (s - 3) * f;
      const float* pgs = pg + (s - 1) * f;
      ParallelFor(batch * n, std::max<int64_t>(1, kSpmmGrainFlops / f),
                  [&](int64_t t0, int64_t t1) {
                    for (int64_t t = t0; t < t1; ++t) {
                      for (int64_t c = 0; c < f; ++c) {
                        psub[t * ld + c] -= pgs[t * ld + c];
                      }
                    }
                  });
    }
    SpmmTiled<SpmmEpilogue::kAddOther>(at, batch, f, pg + f, ld, pg, ld,
                                       gx.data(), f);
    return gx;
  }

  // Dense path: contiguous copies of the slices feed the blocked GEMM.
  auto slice_copy = [&](int64_t s) {
    Tensor t(Shape({batch, n, f}));
    CopyRows(batch * n, f, pg + s * f, ld, t.data(), f);
    return t;
  };
  for (int64_t s = order; s >= 3; --s) {
    const Tensor lt = BatchMatMul(op.dense_transpose(), slice_copy(s - 1));
    const float* plt = lt.data();
    float* padd = pg + (s - 2) * f;
    float* psub = pg + (s - 3) * f;
    const float* pgs = pg + (s - 1) * f;
    ParallelFor(batch * n, std::max<int64_t>(1, kSpmmGrainFlops / f),
                [&](int64_t t0, int64_t t1) {
                  for (int64_t t = t0; t < t1; ++t) {
                    for (int64_t c = 0; c < f; ++c) {
                      padd[t * ld + c] += 2.0f * plt[t * f + c];
                      psub[t * ld + c] -= pgs[t * ld + c];
                    }
                  }
                });
  }
  const Tensor lt = BatchMatMul(op.dense_transpose(), slice_copy(1));
  const Tensor g1 = slice_copy(0);
  const float* plt = lt.data();
  const float* pg1 = g1.data();
  float* pgx = gx.data();
  ParallelFor(batch * n * f, kSpmmGrainFlops, [&](int64_t e0, int64_t e1) {
    for (int64_t e = e0; e < e1; ++e) pgx[e] = pg1[e] + plt[e];
  });
  return gx;
}

void GraphApplyInto(const GraphOperator& op, const Tensor& x, Tensor* out) {
  ODF_TRACE_SCOPE("kernel/", "graph_apply", "kernel");
  ODF_CHECK_EQ(x.rank(), 3);
  const int64_t batch = x.dim(0);
  const int64_t n = x.dim(1);
  const int64_t f = x.dim(2);
  ODF_CHECK_EQ(n, op.nodes());
  ODF_CHECK(out->shape() == x.shape());
  if (op.use_sparse()) {
    // Serial dispatch: the compiled serving path runs whole plans on one
    // thread. Chunking never changes per-element sums (ascending column
    // order), so this matches the tape's parallel odf::SpMM bit for bit.
    SpmmTiled<SpmmEpilogue::kStore, /*kSerial=*/true>(
        op.csr(), batch, f, x.data(), f, nullptr, 0, out->data(), f);
  } else {
    BatchMatMulInto(op.dense(), x, out);
  }
}

void GraphApplyRaw64(const double* dense, const int64_t* row_ptr,
                     const int32_t* col_idx, const double* values, int64_t nnz,
                     int64_t n, const double* x, int64_t batch, int64_t f,
                     double* out) {
  if (dense != nullptr) {
    std::fill(out, out + batch * n * f, 0.0);
    for (int64_t b = 0; b < batch; ++b) {
      GemmRawInto(dense, x + b * n * f, out + b * n * f, n, n, f);
    }
    return;
  }
  SpmmTiledRaw<SpmmEpilogue::kStore, /*kSerial=*/true>(
      row_ptr, col_idx, values, n, n, nnz, batch, f, x, f,
      static_cast<const double*>(nullptr), 0, out, f);
}

std::shared_ptr<const GraphOperator> GraphOperator::Make(Tensor dense,
                                                         int force_sparse) {
  ODF_CHECK_EQ(dense.rank(), 2);
  ODF_CHECK_EQ(dense.dim(0), dense.dim(1));
  auto op = std::shared_ptr<GraphOperator>(new GraphOperator());
  op->dense_ = std::move(dense);
  op->csr_ = CsrMatrix::FromDense(op->dense_);
  op->csr_t_ = op->csr_.Transpose();
  op->dense_t_ = Transpose2D(op->dense_);
  int mode = force_sparse;
  if (mode < 0) {
    mode = static_cast<int>(GetEnvInt("ODF_SPARSE_GRAPH", -1));
  }
  if (mode == 0) {
    op->use_sparse_ = false;
  } else if (mode >= 1) {
    op->use_sparse_ = true;
  } else {
    op->use_sparse_ = op->csr_.Density() <= kSparseDensityThreshold;
  }
  return op;
}

}  // namespace odf
