#ifndef ODF_SERVE_FORWARD_PLAN_H_
#define ODF_SERVE_FORWARD_PLAN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "autograd/var.h"
#include "core/advanced_framework.h"
#include "core/basic_framework.h"
#include "nn/graph_pool.h"
#include "tensor/csr.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/metrics.h"

namespace odf::serve {

/// Tape-free compiled inference (docs/serving.md).
///
/// `PlanCompiler::Compile` walks a trained AF or BF once and emits a flat
/// execution schedule — one `Instr` per tensor kernel of the model's
/// inference forward — over a preallocated arena of buffers. `ForwardPlan::
/// Run` then replays that schedule with zero autograd involvement: no
/// `Var`/`Node` allocation, no `shared_ptr` churn, no per-op output tensors.
/// Buffers are allocated once per batch size and reused across calls.
///
/// Bit-identity: every instruction either calls the exact `odf::` tensor
/// kernel (via its `*Into` variant) that the corresponding `ag::` op calls
/// on the tape, or a re-layouted serving kernel (wide Chebyshev basis,
/// prepacked GEMM, time-batched branch evaluation) that performs the
/// identical per-element accumulation — same terms, same ascending order,
/// same FP contraction — so `Run` reproduces `Predict` bit-for-bit at any
/// thread count (tests/serving_test.cc asserts this on trained
/// checkpoints).
///
/// The plan snapshots the model's parameter tensors at compile time (the
/// prepacked weight panels are derived from them, so post-compile weight
/// loads require recompiling the plan) but holds non-owning references to
/// branch cluster tables and graph operators; the model must outlive the
/// plan. Compile after `nn::LoadParametersChecked`, not before.
///
/// `Run` is NOT reentrant — callers serialize (the serving front-end funnels
/// every batch through one worker thread).

/// Arithmetic width a compiled plan executes at (docs/serving.md
/// "Precision").
///
/// `kFp32` is the substrate width: every instruction calls the exact float
/// kernel the tape calls, so Run reproduces Predict bit-for-bit — this is
/// the default serving mode and the only one under the bit-identity
/// contract. `kFp64` is the widened reference plan: weights, prepacked
/// panels, graph operators and the whole arena are snapshotted into double
/// buffers at compile time, and Run replays the same schedule through the
/// double instantiations of the width-templated kernels (GEMM, SpMM, wide
/// Chebyshev, softmax, fused recover) with inputs widened once at plan
/// entry and outputs narrowed once at exit — no per-call conversions. Its
/// role is accuracy arbitration: the serve-time gate and
/// tests/serving_precision_test.cc measure the fp32 plan's KL/JS/EMD
/// deltas against it, and bench_serving's --precision sweep reports the
/// fp32-over-fp64 speedup (the fp64 kernels run at half the vector lanes
/// and twice the memory traffic). Both widths are bit-identical across
/// thread counts.
enum class Precision : uint8_t { kFp32, kFp64 };

inline const char* PrecisionName(Precision p) {
  return p == Precision::kFp64 ? "fp64" : "fp32";
}

/// Buffer/output shape parameterized on the runtime batch size B:
/// dims = {mult · B, tail...}. Every tensor in the forward has B as a
/// factor of its leading dimension, so this spec covers all of them.
struct BufShape {
  int64_t mult = 1;
  std::vector<int64_t> tail;

  std::vector<int64_t> Dims(int64_t batch) const {
    std::vector<int64_t> dims;
    dims.reserve(tail.size() + 1);
    dims.push_back(mult * batch);
    dims.insert(dims.end(), tail.begin(), tail.end());
    return dims;
  }
  int64_t NumelPerBatch() const {
    int64_t n = mult;
    for (int64_t d : tail) n *= d;
    return n;
  }
};

enum class OpKind : uint8_t {
  kLoadInput,          // copy inputs[input_index] into out at `start`·B elems
  kLoadInputPermuted,  // PermuteInto(inputs[input_index], perm, out)
  kReshape,            // re-view buffer `out` as shape (no data movement)
  kCopy,               // out = a (element copy, same numel)
  kSliceRows,          // out = a[start·B : start·B + out.numel] (elements)
  kStackRows,          // out[start·B : start·B + a.numel] = a (elements)
  kZero,               // out = 0
  kAdd,                // out = a + b (broadcast)
  kMul,                // out = a ⊙ b (broadcast)
  kAddBiasW,           // out = a + weights[w] (broadcast bias)
  kAddScalar,          // out = a + scalar
  kMulScalar,          // out = a · scalar
  kSigmoid,            // out = σ(a)
  kTanh,               // out = tanh(a)
  kRelu,               // out = relu(a)
  kMatMulW,            // out = a · weights[w]           (rank 2)
  kBatchMatMulW,       // out = a ·batched weights[w]    (rank 3 × rank 2)
                       //   (both run prepacked panels when ins.prepacked)
  kConcat2,            // out = Concat({a, b}, axis)
  kConcatN,            // out = Concat(srcs, axis)
  kSlice,              // out = a[..., start:start+len, ...] along axis
  kSumKeep,            // out = Sum(a, axis, keepdim=true)
  kSoftmax,            // out = softmax over last axis of a
  kPermute,            // out = Permute(a, perm)
  kChebBasis,          // out = ChebyshevBasis(graph, a, order); srcs[0..2]
                       //   are the shared wide-layout scratch buffers
  kGraphApply,         // out = graph · a (one polynomial tap; diffusion and
                       //   adaptive bases compose these — see EmitBasisTaps)
  kGraphPool,          // out = GraphPool(a, *clusters, pool)
  kRecover,            // out = FusedRecover(a, b, weights[w][0])
};

/// One schedule step. `a`/`b` are input buffer ids, `out` the output buffer,
/// `w` an index into the plan's weight table; unused fields stay at their
/// defaults. `shape` is the output buffer's view for this instruction and is
/// applied (as a free re-view; numel never changes) before the kernel runs.
struct Instr {
  OpKind kind = OpKind::kZero;
  int32_t a = -1;
  int32_t b = -1;
  int32_t out = -1;
  int32_t w = -1;
  int32_t input_index = -1;
  int64_t axis = 0;
  int64_t start = 0;
  int64_t len = 0;
  int64_t order = 0;
  float scalar = 0.0f;
  bool prepacked = false;      // kMatMulW/kBatchMatMulW: use packed panels
  BufShape shape;
  std::vector<int64_t> perm;   // kLoadInputPermuted / kPermute
  std::vector<int32_t> srcs;   // kConcatN / kChebBasis wide scratch
  std::shared_ptr<const GraphOperator> graph;                // kChebBasis
  const std::vector<std::vector<int64_t>>* clusters = nullptr;  // kGraphPool
  nn::PoolKind pool = nn::PoolKind::kAverage;                // kGraphPool
};

class ForwardPlan {
 public:
  ForwardPlan() = default;
  ForwardPlan(ForwardPlan&&) = default;
  ForwardPlan& operator=(ForwardPlan&&) = default;

  /// Executes the schedule on `inputs` (the model's `Batch::inputs`:
  /// `history()` tensors, each [B, N, N', K]). Reallocates arena buffers
  /// only when B differs from the previous call. Not reentrant.
  void Run(const std::vector<Tensor>& inputs);

  /// Horizon-step prediction `j` of the last Run: [B, N, N', K]. The
  /// reference stays valid (and stable) until the next Run at a different
  /// batch size.
  const Tensor& output(int64_t j) const {
    ODF_CHECK_GE(j, 0);
    ODF_CHECK_LT(j, static_cast<int64_t>(outputs_.size()));
    return bufs_[static_cast<size_t>(outputs_[static_cast<size_t>(j)])];
  }

  /// Arithmetic width this plan executes at (fixed at compile time).
  Precision precision() const { return precision_; }

  int64_t history() const { return history_; }
  int64_t horizon() const { return static_cast<int64_t>(outputs_.size()); }
  int64_t num_instructions() const {
    return static_cast<int64_t>(instrs_.size());
  }
  int64_t num_buffers() const { return static_cast<int64_t>(bufs_.size()); }

  /// Distinct GraphOperators referenced by the schedule (empty for BF and
  /// graph-free ablations). Pointer-compared by tests to assert that plans
  /// compiled from independently constructed models share the memoized
  /// operators (graph/laplacian.h).
  const std::vector<std::shared_ptr<const GraphOperator>>& graph_operators()
      const {
    return graph_ops_;
  }

 private:
  friend class PlanCompiler;

  void EnsureBatch(int64_t batch);
  void Exec(const Instr& ins, const std::vector<Tensor>& inputs);
  /// Replays one instruction over the double arena (fp64 plans). The float
  /// buffers still carry the shape metadata (PrepareShape is applied to
  /// them exactly as in Exec; their payloads are never read or written), so
  /// both widths share one schedule.
  void Exec64(const Instr& ins, const std::vector<Tensor>& inputs);
  /// Converts the compiled fp32 tables (weights, prepacked panels, graph
  /// operators) into their double twins and flips the plan to kFp64.
  /// Called once by PlanCompiler::Compile; the fp32 tables stay resident
  /// for shape metadata.
  void LowerToFp64();

  struct Phase {
    const char* name = "";
    size_t begin = 0;
    size_t end = 0;
    Histogram* hist = nullptr;  // serve.plan.<name>_seconds
  };

  /// Double snapshot of one GraphOperator (fp64 plans): exactly one of
  /// `dense` / `csr_values` is populated, matching the operator's chosen
  /// path. CSR structure (row_ptr/col_idx) is shared with the operator,
  /// which the plan keeps alive through graph_ops_.
  struct GraphData64 {
    const GraphOperator* op = nullptr;
    std::vector<double> dense;
    std::vector<double> csr_values;
  };

  std::vector<Instr> instrs_;
  std::vector<BufShape> specs_;  // canonical (allocation) shape per buffer
  std::vector<Tensor> bufs_;
  std::vector<Tensor> weights_;        // compile-time parameter snapshots
  std::vector<PackedGemmB> packed_;    // per-weight panels (empty if unused)
  std::vector<int32_t> outputs_;       // buffer id per horizon step
  std::vector<Phase> phases_;
  std::vector<std::shared_ptr<const GraphOperator>> graph_ops_;
  std::vector<const Tensor*> concat_scratch_;

  // fp64 twins (empty on fp32 plans): one double arena slab per buffer,
  // double weight snapshots, double prepacked panels, graph snapshots.
  std::vector<std::vector<double>> dbufs_;
  std::vector<std::vector<double>> dweights_;
  std::vector<PackedGemmB64> dpacked_;
  std::vector<GraphData64> graph64_;

  Precision precision_ = Precision::kFp32;
  int64_t history_ = 0;
  // Expected input tensor shape tail [N, N', K].
  std::vector<int64_t> input_tail_;
  int64_t batch_ = -1;
};

/// Compiles inference schedules from trained models. Friend of every nn
/// module so it can lift private weights and graph operators into the plan's
/// tables without widening the module APIs.
class PlanCompiler {
 public:
  /// `history` is the dataset's input window length s (ForecastDataset::
  /// history()); the schedule is unrolled over it. `precision` picks the
  /// arithmetic width of the emitted plan (see Precision above): kFp32 is
  /// the bit-identical default, kFp64 the widened reference plan.
  static ForwardPlan Compile(const AdvancedFramework& model, int64_t history,
                             Precision precision = Precision::kFp32);
  static ForwardPlan Compile(const BasicFramework& model, int64_t history,
                             Precision precision = Precision::kFp32);

 private:
  PlanCompiler() = default;

  // -- schedule assembly -------------------------------------------------
  int32_t NewBuf(BufShape spec);
  int32_t AddWeight(const autograd::Var& v);
  /// Marks a kMatMulW/kBatchMatMulW instruction prepacked (and packs its
  /// weight panels once) when the blocked path handles its row count.
  void MaybePrepack(Instr& mm, const BufShape& os);
  /// Grows (or allocates) the three wide-layout Chebyshev scratch buffers
  /// shared by every kChebBasis site to at least `numel_per_batch` floats.
  void EnsureWideScratch(int64_t numel_per_batch);
  Instr& Emit(OpKind kind, int32_t out, BufShape shape);
  void BeginPhase(const char* name);
  void AddGraph(const std::shared_ptr<const GraphOperator>& op);
  const BufShape& ShapeOf(int32_t buf) const;
  void Reshape(int32_t buf, BufShape shape);

  // -- module lowering (each mirrors the module's tape forward) ----------
  int32_t EmitChebTaps(const std::shared_ptr<const GraphOperator>& op,
                       int32_t x, int64_t order, int32_t taps);
  /// GraphBasis::Stack on rank-3 `x` into `taps` [B, n, basis.taps()·F]. A
  /// single-component Chebyshev basis takes the fused kChebBasis path
  /// (bit-identical to the legacy schedule); every other basis composes
  /// kGraphApply / kMulScalar / kAdd chains that replay the tape's ops
  /// term for term. Adaptive bases snapshot softmax(relu(E_o·E_dᵀ)) at
  /// compile time into a dense GraphOperator. Returns the taps buffer.
  int32_t EmitBasisTaps(const nn::GraphBasis& basis, int32_t x, int32_t taps);
  /// One kGraphApply instruction: out = op · x (shapes equal).
  void EmitGraphApply(const std::shared_ptr<const GraphOperator>& op,
                      int32_t x, int32_t out);
  /// ChebConv::Forward on rank-3 `x`; result lands in `out` when >= 0.
  int32_t EmitChebConv(const nn::ChebConv& conv, int32_t x, int32_t out);
  /// Linear::Forward on rank-2 `x`; result lands in `out` when >= 0.
  int32_t EmitLinear(const nn::Linear& linear, int32_t x, int32_t out);
  void EmitGcGruStep(const nn::GcGruCell& cell, int32_t x, int32_t h);
  void EmitGruStep(const nn::GruCell& cell, int32_t x, int32_t h);
  int32_t EmitAttention(const nn::LuongAttention& attention, int32_t decoder,
                        const std::vector<int32_t>& encoder_copies);
  /// AdvancedFramework::ApplyBranch into `out` shaped [B·slices, β, K].
  void EmitBranch(const AdvancedFramework& model,
                  const AdvancedFramework::FactorBranch& branch, int32_t in,
                  int32_t out);

  struct SeqState {
    std::vector<int32_t> states;          // per-layer hidden buffers
    std::vector<int32_t> encoder_copies;  // per-step top states (attention)
    int32_t last_input = -1;
  };
  SeqState EmitGcGruEncoder(const nn::Seq2SeqGcGru& seq,
                            const std::vector<int32_t>& inputs);
  std::vector<int32_t> EmitGcGruDecoder(const nn::Seq2SeqGcGru& seq,
                                        const SeqState& state,
                                        int64_t horizon);
  SeqState EmitGruEncoder(const nn::Seq2SeqGru& seq,
                          const std::vector<int32_t>& inputs);
  std::vector<int32_t> EmitGruDecoder(const nn::Seq2SeqGru& seq,
                                      const SeqState& state, int64_t horizon);

  /// Per-module scratch buffers, reused across unrolled steps (the schedule
  /// is sequential, so one set per module is enough).
  std::vector<int32_t>& Scratch(const void* key);

  ForwardPlan plan_;
  std::vector<BufShape> shapes_;  // compile-time view per buffer
  std::map<const void*, std::vector<int32_t>> scratch_;
  // Weight dedup: source parameter tensor -> snapshot index in weights_.
  std::map<const Tensor*, int32_t> weight_ids_;
  int32_t wide_scratch_[3] = {-1, -1, -1};
  // Per-site part/negation buffers of the generic EmitBasisTaps path, keyed
  // by the taps buffer id (one basis serves call sites of different feature
  // widths, so per-basis keying would mix shapes).
  std::map<int32_t, std::vector<int32_t>> basis_scratch_;
  // Compile-time adaptive adjacency snapshots, one per GraphBasis.
  std::map<const void*, std::shared_ptr<const GraphOperator>> adaptive_ops_;
};

}  // namespace odf::serve

#endif  // ODF_SERVE_FORWARD_PLAN_H_
