#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <utility>

#include "metrics/divergence.h"
#include "util/env_config.h"
#include "util/metrics.h"

namespace odf::serve {

namespace {

struct ServeMetrics {
  Counter& requests =
      MetricsRegistry::Global().GetCounter("serve.requests");
  Counter& batches = MetricsRegistry::Global().GetCounter("serve.batches");
  Counter& cache_hits =
      MetricsRegistry::Global().GetCounter("serve.cache_hits");
  Counter& cache_misses =
      MetricsRegistry::Global().GetCounter("serve.cache_misses");
  Gauge& queue_depth =
      MetricsRegistry::Global().GetGauge("serve.queue_depth");
  Histogram& request_seconds =
      MetricsRegistry::Global().GetHistogram("serve.request_seconds");
  Histogram& cached_request_seconds =
      MetricsRegistry::Global().GetHistogram("serve.cached_request_seconds");
  Histogram& batch_forward_seconds =
      MetricsRegistry::Global().GetHistogram("serve.batch_forward_seconds");
  Histogram& batch_size =
      MetricsRegistry::Global().GetHistogram("serve.batch_size");
  Counter& precision_checks =
      MetricsRegistry::Global().GetCounter("serve.precision_checks");
  Counter& precision_gate_rejects =
      MetricsRegistry::Global().GetCounter("serve.precision_gate_rejects");
  Histogram& precision_kl =
      MetricsRegistry::Global().GetHistogram("serve.precision_kl");
  Histogram& precision_js =
      MetricsRegistry::Global().GetHistogram("serve.precision_js");
  Histogram& precision_emd =
      MetricsRegistry::Global().GetHistogram("serve.precision_emd");
};

ServeMetrics& Metrics() {
  static ServeMetrics m;
  return m;
}

}  // namespace

ServeConfig ServeConfig::FromEnv() {
  ServeConfig config;
  config.max_batch = GetEnvInt("ODF_SERVE_MAX_BATCH", config.max_batch);
  config.batch_window_us =
      GetEnvInt("ODF_SERVE_BATCH_WINDOW_US", config.batch_window_us);
  config.cache_enabled = GetEnvBool("ODF_SERVE_CACHE", config.cache_enabled);
  const std::string precision =
      GetEnvString("ODF_SERVE_PRECISION", PrecisionName(config.precision));
  if (precision == "fp64") {
    config.precision = Precision::kFp64;
  } else {
    ODF_CHECK(precision == "fp32")
        << "ODF_SERVE_PRECISION must be fp32 or fp64, got: " << precision;
    config.precision = Precision::kFp32;
  }
  config.precision_check =
      GetEnvBool("ODF_SERVE_PRECISION_CHECK", config.precision_check);
  return config;
}

ForecastService::ForecastService(const ForecastDataset* dataset,
                                 ForwardPlan plan, ServeConfig config)
    : dataset_(dataset),
      plan_(std::move(plan)),
      config_(config),
      active_(static_cast<uint8_t>(plan_.precision())) {
  ODF_CHECK(dataset_ != nullptr);
  ODF_CHECK_EQ(plan_.history(), dataset_->history());
  ODF_CHECK_GE(config_.max_batch, 1);
  ODF_CHECK_GE(config_.batch_window_us, 0);
  worker_ = std::thread(&ForecastService::WorkerLoop, this);
}

ForecastService::~ForecastService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void ForecastService::AddPlan(ForwardPlan plan) {
  ODF_CHECK(extra_.load(std::memory_order_acquire) == nullptr)
      << "at most one extra plan can be registered";
  ODF_CHECK_EQ(plan.history(), plan_.history());
  ODF_CHECK_EQ(plan.horizon(), plan_.horizon());
  ODF_CHECK(plan.precision() != plan_.precision())
      << "extra plan must be compiled at the other precision";
  extra_storage_ = std::make_unique<ForwardPlan>(std::move(plan));
  extra_.store(extra_storage_.get(), std::memory_order_release);
  if (config_.precision == extra_storage_->precision()) {
    SetPrecision(config_.precision);
  }
}

void ForecastService::SetPrecision(Precision p) {
  ODF_CHECK(PlanFor(p) != nullptr)
      << "no plan compiled at " << PrecisionName(p) << " is registered";
  active_.store(static_cast<uint8_t>(p), std::memory_order_release);
}

ForwardPlan* ForecastService::PlanFor(Precision p) {
  if (plan_.precision() == p) return &plan_;
  ForwardPlan* extra = extra_.load(std::memory_order_acquire);
  if (extra != nullptr && extra->precision() == p) return extra;
  return nullptr;
}

std::future<ForecastResult> ForecastService::ForecastAsync(int64_t sample) {
  ODF_CHECK_GE(sample, 0);
  ODF_CHECK_LT(sample, dataset_->NumSamples());
  Metrics().requests.Add(1);
  std::promise<ForecastResult> promise;
  std::future<ForecastResult> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::promise<ForecastResult>>& waiters = pending_[sample];
    if (waiters.empty()) order_.push_back(sample);
    waiters.push_back(std::move(promise));
  }
  cv_.notify_one();
  return future;
}

ForecastResult ForecastService::Forecast(int64_t sample) {
  ScopedTimer timer(Metrics().request_seconds);
  return ForecastAsync(sample).get();
}

ForecastResult ForecastService::ForecastCurrent() {
  ScopedTimer timer(Metrics().cached_request_seconds);
  const Precision active = precision();
  int64_t sample;
  if (config_.cache_enabled) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cached_ != nullptr && cached_interval_ == current_ &&
        cached_precision_ == active) {
      Metrics().cache_hits.Add(1);
      return cached_;
    }
    Metrics().cache_misses.Add(1);
    sample = current_;
  } else {
    std::lock_guard<std::mutex> lock(cache_mu_);
    sample = current_;
  }
  ForecastResult result = Forecast(sample);
  if (config_.cache_enabled) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    // Only publish if neither the interval nor the serving precision rolled
    // over mid-flight.
    if (current_ == sample && precision() == active) {
      cached_ = result;
      cached_interval_ = sample;
      cached_precision_ = active;
    }
  }
  return result;
}

void ForecastService::SetCurrentInterval(int64_t sample) {
  ODF_CHECK_GE(sample, 0);
  ODF_CHECK_LT(sample, dataset_->NumSamples());
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (sample == current_) return;
  current_ = sample;
  cached_.reset();
  cached_interval_ = -1;
}

int64_t ForecastService::current_interval() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return current_;
}

void ForecastService::WorkerLoop() {
  std::vector<int64_t> samples;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !order_.empty(); });
      if (order_.empty()) return;  // stop_ and drained
      if (static_cast<int64_t>(order_.size()) < config_.max_batch &&
          config_.batch_window_us > 0) {
        // Latency budget: hold the batch open briefly for more arrivals.
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(config_.batch_window_us);
        cv_.wait_until(lock, deadline, [&] {
          return stop_ ||
                 static_cast<int64_t>(order_.size()) >= config_.max_batch;
        });
      }
      samples.clear();
      while (!order_.empty() &&
             static_cast<int64_t>(samples.size()) < config_.max_batch) {
        samples.push_back(order_.front());
        order_.pop_front();
      }
      Metrics().queue_depth.Set(static_cast<double>(order_.size()));
    }
    RunBatch(samples);
  }
}

void ForecastService::RunBatch(const std::vector<int64_t>& samples) {
  Batch batch = dataset_->MakeBatch(samples);
  const Precision active = precision();
  ForwardPlan* serving = PlanFor(active);
  ODF_CHECK(serving != nullptr);
  {
    ScopedTimer timer(Metrics().batch_forward_seconds);
    serving->Run(batch.inputs);
  }
  Metrics().batches.Add(1);
  Metrics().batch_size.Record(samples.size());

  // Accuracy gate (docs/serving.md "Precision"): with the check on and both
  // widths registered, run the other plan on the same inputs and compare the
  // per-query worst-case histogram deltas against the tolerances. A rejected
  // batch is served from the fp64 reference plan.
  ForwardPlan* result_plan = serving;
  ForwardPlan* fp32 = PlanFor(Precision::kFp32);
  ForwardPlan* fp64 = PlanFor(Precision::kFp64);
  if (config_.precision_check && fp32 != nullptr && fp64 != nullptr) {
    ForwardPlan* other = serving == fp32 ? fp64 : fp32;
    other->Run(batch.inputs);
    bool reject = false;
    const int64_t k = fp32->output(0).dim(3);  // histogram buckets
    for (size_t row = 0; row < samples.size(); ++row) {
      double max_kl = 0.0;
      double max_js = 0.0;
      double max_emd = 0.0;
      for (int64_t j = 0; j < plan_.horizon(); ++j) {
        const Tensor& ref = fp64->output(j);  // [B, N, N', K]
        const Tensor& low = fp32->output(j);
        const int64_t per_row = ref.numel() / ref.dim(0);
        const float* pr = ref.data() + static_cast<int64_t>(row) * per_row;
        const float* pl = low.data() + static_cast<int64_t>(row) * per_row;
        for (int64_t c = 0; c < per_row / k; ++c, pr += k, pl += k) {
          max_kl = std::max(max_kl, std::fabs(KlDivergence(pr, pl, k)));
          max_js = std::max(max_js, std::fabs(JsDivergence(pr, pl, k)));
          max_emd = std::max(max_emd, EarthMoversDistance(pr, pl, k));
        }
      }
      Metrics().precision_checks.Add(1);
      Metrics().precision_kl.Record(max_kl);
      Metrics().precision_js.Record(max_js);
      Metrics().precision_emd.Record(max_emd);
      if (max_kl > kPrecisionKlTolerance || max_js > kPrecisionJsTolerance ||
          max_emd > kPrecisionEmdTolerance) {
        reject = true;
      }
    }
    if (reject) {
      Metrics().precision_gate_rejects.Add(1);
      result_plan = fp64;
    }
  }

  const int64_t horizon = plan_.horizon();
  std::vector<ForecastResult> results;
  results.reserve(samples.size());
  for (size_t row = 0; row < samples.size(); ++row) {
    auto forecast = std::make_shared<std::vector<Tensor>>();
    forecast->reserve(static_cast<size_t>(horizon));
    for (int64_t j = 0; j < horizon; ++j) {
      const Tensor& out = result_plan->output(j);  // [B, N, N', K]
      std::vector<int64_t> dims(out.shape().dims().begin() + 1,
                                out.shape().dims().end());
      Tensor slice{Shape(dims)};
      const int64_t stride = slice.numel();
      std::copy(out.data() + static_cast<int64_t>(row) * stride,
                out.data() + static_cast<int64_t>(row + 1) * stride,
                slice.data());
      forecast->push_back(std::move(slice));
    }
    results.push_back(std::move(forecast));
  }

  // Fulfill outside mu_ so waiters never contend with the queue.
  std::vector<std::vector<std::promise<ForecastResult>>> waiters;
  waiters.reserve(samples.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int64_t sample : samples) {
      auto it = pending_.find(sample);
      ODF_CHECK(it != pending_.end());
      waiters.push_back(std::move(it->second));
      pending_.erase(it);
    }
  }
  for (size_t i = 0; i < waiters.size(); ++i) {
    for (std::promise<ForecastResult>& promise : waiters[i]) {
      promise.set_value(results[i]);
    }
  }
}

}  // namespace odf::serve
