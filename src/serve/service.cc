#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/env_config.h"
#include "util/metrics.h"

namespace odf::serve {

namespace {

struct ServeMetrics {
  Counter& requests =
      MetricsRegistry::Global().GetCounter("serve.requests");
  Counter& batches = MetricsRegistry::Global().GetCounter("serve.batches");
  Counter& cache_hits =
      MetricsRegistry::Global().GetCounter("serve.cache_hits");
  Counter& cache_misses =
      MetricsRegistry::Global().GetCounter("serve.cache_misses");
  Gauge& queue_depth =
      MetricsRegistry::Global().GetGauge("serve.queue_depth");
  Histogram& request_seconds =
      MetricsRegistry::Global().GetHistogram("serve.request_seconds");
  Histogram& cached_request_seconds =
      MetricsRegistry::Global().GetHistogram("serve.cached_request_seconds");
  Histogram& batch_forward_seconds =
      MetricsRegistry::Global().GetHistogram("serve.batch_forward_seconds");
  Histogram& batch_size =
      MetricsRegistry::Global().GetHistogram("serve.batch_size");
};

ServeMetrics& Metrics() {
  static ServeMetrics m;
  return m;
}

}  // namespace

ServeConfig ServeConfig::FromEnv() {
  ServeConfig config;
  config.max_batch = GetEnvInt("ODF_SERVE_MAX_BATCH", config.max_batch);
  config.batch_window_us =
      GetEnvInt("ODF_SERVE_BATCH_WINDOW_US", config.batch_window_us);
  config.cache_enabled = GetEnvBool("ODF_SERVE_CACHE", config.cache_enabled);
  return config;
}

ForecastService::ForecastService(const ForecastDataset* dataset,
                                 ForwardPlan plan, ServeConfig config)
    : dataset_(dataset), plan_(std::move(plan)), config_(config) {
  ODF_CHECK(dataset_ != nullptr);
  ODF_CHECK_EQ(plan_.history(), dataset_->history());
  ODF_CHECK_GE(config_.max_batch, 1);
  ODF_CHECK_GE(config_.batch_window_us, 0);
  worker_ = std::thread(&ForecastService::WorkerLoop, this);
}

ForecastService::~ForecastService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

std::future<ForecastResult> ForecastService::ForecastAsync(int64_t sample) {
  ODF_CHECK_GE(sample, 0);
  ODF_CHECK_LT(sample, dataset_->NumSamples());
  Metrics().requests.Add(1);
  std::promise<ForecastResult> promise;
  std::future<ForecastResult> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::promise<ForecastResult>>& waiters = pending_[sample];
    if (waiters.empty()) order_.push_back(sample);
    waiters.push_back(std::move(promise));
  }
  cv_.notify_one();
  return future;
}

ForecastResult ForecastService::Forecast(int64_t sample) {
  ScopedTimer timer(Metrics().request_seconds);
  return ForecastAsync(sample).get();
}

ForecastResult ForecastService::ForecastCurrent() {
  ScopedTimer timer(Metrics().cached_request_seconds);
  int64_t sample;
  if (config_.cache_enabled) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cached_ != nullptr && cached_interval_ == current_) {
      Metrics().cache_hits.Add(1);
      return cached_;
    }
    Metrics().cache_misses.Add(1);
    sample = current_;
  } else {
    std::lock_guard<std::mutex> lock(cache_mu_);
    sample = current_;
  }
  ForecastResult result = Forecast(sample);
  if (config_.cache_enabled) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    // Only publish if the interval did not roll over mid-flight.
    if (current_ == sample) {
      cached_ = result;
      cached_interval_ = sample;
    }
  }
  return result;
}

void ForecastService::SetCurrentInterval(int64_t sample) {
  ODF_CHECK_GE(sample, 0);
  ODF_CHECK_LT(sample, dataset_->NumSamples());
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (sample == current_) return;
  current_ = sample;
  cached_.reset();
  cached_interval_ = -1;
}

int64_t ForecastService::current_interval() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return current_;
}

void ForecastService::WorkerLoop() {
  std::vector<int64_t> samples;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !order_.empty(); });
      if (order_.empty()) return;  // stop_ and drained
      if (static_cast<int64_t>(order_.size()) < config_.max_batch &&
          config_.batch_window_us > 0) {
        // Latency budget: hold the batch open briefly for more arrivals.
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(config_.batch_window_us);
        cv_.wait_until(lock, deadline, [&] {
          return stop_ ||
                 static_cast<int64_t>(order_.size()) >= config_.max_batch;
        });
      }
      samples.clear();
      while (!order_.empty() &&
             static_cast<int64_t>(samples.size()) < config_.max_batch) {
        samples.push_back(order_.front());
        order_.pop_front();
      }
      Metrics().queue_depth.Set(static_cast<double>(order_.size()));
    }
    RunBatch(samples);
  }
}

void ForecastService::RunBatch(const std::vector<int64_t>& samples) {
  Batch batch = dataset_->MakeBatch(samples);
  {
    ScopedTimer timer(Metrics().batch_forward_seconds);
    plan_.Run(batch.inputs);
  }
  Metrics().batches.Add(1);
  Metrics().batch_size.Record(samples.size());

  const int64_t horizon = plan_.horizon();
  std::vector<ForecastResult> results;
  results.reserve(samples.size());
  for (size_t row = 0; row < samples.size(); ++row) {
    auto forecast = std::make_shared<std::vector<Tensor>>();
    forecast->reserve(static_cast<size_t>(horizon));
    for (int64_t j = 0; j < horizon; ++j) {
      const Tensor& out = plan_.output(j);  // [B, N, N', K]
      std::vector<int64_t> dims(out.shape().dims().begin() + 1,
                                out.shape().dims().end());
      Tensor slice{Shape(dims)};
      const int64_t stride = slice.numel();
      std::copy(out.data() + static_cast<int64_t>(row) * stride,
                out.data() + static_cast<int64_t>(row + 1) * stride,
                slice.data());
      forecast->push_back(std::move(slice));
    }
    results.push_back(std::move(forecast));
  }

  // Fulfill outside mu_ so waiters never contend with the queue.
  std::vector<std::vector<std::promise<ForecastResult>>> waiters;
  waiters.reserve(samples.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int64_t sample : samples) {
      auto it = pending_.find(sample);
      ODF_CHECK(it != pending_.end());
      waiters.push_back(std::move(it->second));
      pending_.erase(it);
    }
  }
  for (size_t i = 0; i < waiters.size(); ++i) {
    for (std::promise<ForecastResult>& promise : waiters[i]) {
      promise.set_value(results[i]);
    }
  }
}

}  // namespace odf::serve
