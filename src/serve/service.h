#ifndef ODF_SERVE_SERVICE_H_
#define ODF_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "od/dataset.h"
#include "serve/forward_plan.h"

namespace odf::serve {

/// Accuracy-gate tolerances for the precision check (docs/serving.md
/// "Precision"): a batch is rejected — and served from the fp64 reference
/// plan instead — when any query's per-cell max KL/JS/EMD between the fp32
/// and fp64 plan histograms exceeds these. The values bound what float
/// rounding can legitimately produce on trained checkpoints (measured by
/// bench_serving --precision and enforced by tests/serving_precision_test);
/// a genuine plan divergence lands orders of magnitude above them.
inline constexpr double kPrecisionKlTolerance = 1e-5;
inline constexpr double kPrecisionJsTolerance = 1e-5;
inline constexpr double kPrecisionEmdTolerance = 1e-4;

/// Serving front-end knobs (docs/serving.md).
struct ServeConfig {
  /// Largest number of distinct samples coalesced into one plan execution.
  int64_t max_batch = 8;
  /// How long the worker waits for more queries to arrive after the first
  /// one before closing a batch (the latency budget). 0 disables coalescing.
  int64_t batch_window_us = 200;
  /// Serve repeated current-interval queries from one cached snapshot.
  bool cache_enabled = true;
  /// Arithmetic width to serve at. The service activates this precision as
  /// soon as a plan compiled at it is available (the construction plan or a
  /// later AddPlan); until then it serves at the construction plan's width.
  Precision precision = Precision::kFp32;
  /// When true and plans at BOTH precisions are registered, every batch runs
  /// through both plans and the per-query KL/JS/EMD deltas are checked
  /// against the kPrecision*Tolerance gate; a rejected batch is served from
  /// the fp64 plan. Doubles the serving cost — a validation mode, off by
  /// default.
  bool precision_check = false;

  /// Reads ODF_SERVE_MAX_BATCH / ODF_SERVE_BATCH_WINDOW_US / ODF_SERVE_CACHE
  /// / ODF_SERVE_PRECISION / ODF_SERVE_PRECISION_CHECK (util/env_config.h)
  /// over the defaults above.
  static ServeConfig FromEnv();
};

/// One forecast: `horizon` tensors, each [N, N', K], for a single sample.
/// Shared so concurrent queries for the same sample (and every cache hit)
/// alias one immutable snapshot instead of copying it.
using ForecastResult = std::shared_ptr<const std::vector<Tensor>>;

/// Micro-batching forecast server over one compiled ForwardPlan.
///
/// Queries enqueue a sample index and block on a future; a single worker
/// thread coalesces everything that arrives within `batch_window_us` of the
/// first queued query (up to `max_batch` distinct samples) into one batched
/// plan execution, then slices the per-sample forecasts back out. Duplicate
/// sample indices inside one window share a batch row and a result snapshot.
///
/// The interval cache additionally pins the forecast of the designated
/// "current" interval: after the first miss, `ForecastCurrent` is a lock +
/// shared_ptr copy until `SetCurrentInterval` rolls the interval over. The
/// cache is keyed on (interval, precision), so flipping the serving
/// precision mid-run can never hand out a stale other-precision histogram.
///
/// Precision (docs/serving.md "Precision"): the service serves from one
/// plan at a time — `AddPlan` registers a second plan compiled at the other
/// width, `SetPrecision` flips between them, and `config.precision` (the
/// ODF_SERVE_PRECISION knob) picks the width activated automatically once a
/// plan at it exists. With `config.precision_check` on and both plans
/// registered, every batch runs both widths and is gated on the per-query
/// KL/JS/EMD deltas (kPrecision*Tolerance).
///
/// Instrumentation (util/metrics.h, enabled via ODF_METRICS):
///   counters   serve.requests, serve.batches, serve.cache_hits,
///              serve.cache_misses, serve.precision_checks,
///              serve.precision_gate_rejects
///   gauge      serve.queue_depth (after each batch is cut)
///   histograms serve.request_seconds, serve.cached_request_seconds,
///              serve.batch_forward_seconds, serve.batch_size (a count,
///              not a duration), serve.precision_kl / _js / _emd (per-query
///              max deltas; dimensionless), plus the plan's serve.plan.*
///              family.
///
/// The dataset must outlive the service (as must the model the plans were
/// compiled from). All public methods are thread-safe.
class ForecastService {
 public:
  ForecastService(const ForecastDataset* dataset, ForwardPlan plan,
                  ServeConfig config = ServeConfig::FromEnv());
  ~ForecastService();

  ForecastService(const ForecastService&) = delete;
  ForecastService& operator=(const ForecastService&) = delete;

  /// Registers a second plan compiled at the other precision (same model,
  /// same history). At most one extra plan; if its width matches
  /// `config().precision`, it becomes the serving plan immediately.
  void AddPlan(ForwardPlan plan);

  /// Flips the serving width. A plan compiled at `p` must be registered.
  /// In-flight batches finish at the width they started at.
  void SetPrecision(Precision p);

  /// The width new batches serve at.
  Precision precision() const {
    return static_cast<Precision>(active_.load(std::memory_order_acquire));
  }

  /// Blocking forecast of dataset sample `sample`.
  ForecastResult Forecast(int64_t sample);

  /// Enqueues a forecast of sample `sample` without blocking.
  std::future<ForecastResult> ForecastAsync(int64_t sample);

  /// Forecast of the current interval's sample, served from the cache when
  /// it is warm. The first call after a rollover or a precision flip (or
  /// with the cache disabled) falls through to Forecast.
  ForecastResult ForecastCurrent();

  /// Rolls the current interval over to `sample`, invalidating the cache
  /// when it actually changes.
  void SetCurrentInterval(int64_t sample);

  int64_t current_interval() const;
  const ServeConfig& config() const { return config_; }
  int64_t horizon() const { return plan_.horizon(); }

 private:
  void WorkerLoop();
  void RunBatch(const std::vector<int64_t>& samples);
  /// The registered plan compiled at `p`, or nullptr.
  ForwardPlan* PlanFor(Precision p);

  const ForecastDataset* dataset_;
  ForwardPlan plan_;
  ServeConfig config_;

  // Optional second plan at the other width. Published via an atomic pointer
  // so the worker's acquire-load sees a fully constructed plan without
  // holding mu_ across a batch.
  std::unique_ptr<ForwardPlan> extra_storage_;
  std::atomic<ForwardPlan*> extra_{nullptr};
  std::atomic<uint8_t> active_;  // Precision new batches serve at

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::deque<int64_t> order_;  // distinct queued samples, arrival order
  std::unordered_map<int64_t, std::vector<std::promise<ForecastResult>>>
      pending_;

  mutable std::mutex cache_mu_;
  int64_t current_ = 0;
  int64_t cached_interval_ = -1;
  Precision cached_precision_ = Precision::kFp32;
  ForecastResult cached_;

  std::thread worker_;
};

}  // namespace odf::serve

#endif  // ODF_SERVE_SERVICE_H_
