#ifndef ODF_SERVE_SERVICE_H_
#define ODF_SERVE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "od/dataset.h"
#include "serve/forward_plan.h"

namespace odf::serve {

/// Serving front-end knobs (docs/serving.md).
struct ServeConfig {
  /// Largest number of distinct samples coalesced into one plan execution.
  int64_t max_batch = 8;
  /// How long the worker waits for more queries to arrive after the first
  /// one before closing a batch (the latency budget). 0 disables coalescing.
  int64_t batch_window_us = 200;
  /// Serve repeated current-interval queries from one cached snapshot.
  bool cache_enabled = true;

  /// Reads ODF_SERVE_MAX_BATCH / ODF_SERVE_BATCH_WINDOW_US / ODF_SERVE_CACHE
  /// (util/env_config.h) over the defaults above.
  static ServeConfig FromEnv();
};

/// One forecast: `horizon` tensors, each [N, N', K], for a single sample.
/// Shared so concurrent queries for the same sample (and every cache hit)
/// alias one immutable snapshot instead of copying it.
using ForecastResult = std::shared_ptr<const std::vector<Tensor>>;

/// Micro-batching forecast server over one compiled ForwardPlan.
///
/// Queries enqueue a sample index and block on a future; a single worker
/// thread coalesces everything that arrives within `batch_window_us` of the
/// first queued query (up to `max_batch` distinct samples) into one batched
/// plan execution, then slices the per-sample forecasts back out. Duplicate
/// sample indices inside one window share a batch row and a result snapshot.
///
/// The interval cache additionally pins the forecast of the designated
/// "current" interval: after the first miss, `ForecastCurrent` is a lock +
/// shared_ptr copy until `SetCurrentInterval` rolls the interval over.
///
/// Instrumentation (util/metrics.h, enabled via ODF_METRICS):
///   counters   serve.requests, serve.batches, serve.cache_hits,
///              serve.cache_misses
///   gauge      serve.queue_depth (after each batch is cut)
///   histograms serve.request_seconds, serve.cached_request_seconds,
///              serve.batch_forward_seconds, serve.batch_size (a count,
///              not a duration), plus the plan's serve.plan.* family.
///
/// The dataset must outlive the service (as must the model the plan was
/// compiled from). All public methods are thread-safe.
class ForecastService {
 public:
  ForecastService(const ForecastDataset* dataset, ForwardPlan plan,
                  ServeConfig config = ServeConfig::FromEnv());
  ~ForecastService();

  ForecastService(const ForecastService&) = delete;
  ForecastService& operator=(const ForecastService&) = delete;

  /// Blocking forecast of dataset sample `sample`.
  ForecastResult Forecast(int64_t sample);

  /// Enqueues a forecast of sample `sample` without blocking.
  std::future<ForecastResult> ForecastAsync(int64_t sample);

  /// Forecast of the current interval's sample, served from the cache when
  /// it is warm. The first call after a rollover (or with the cache
  /// disabled) falls through to Forecast.
  ForecastResult ForecastCurrent();

  /// Rolls the current interval over to `sample`, invalidating the cache
  /// when it actually changes.
  void SetCurrentInterval(int64_t sample);

  int64_t current_interval() const;
  const ServeConfig& config() const { return config_; }
  int64_t horizon() const { return plan_.horizon(); }

 private:
  void WorkerLoop();
  void RunBatch(const std::vector<int64_t>& samples);

  const ForecastDataset* dataset_;
  ForwardPlan plan_;
  ServeConfig config_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::deque<int64_t> order_;  // distinct queued samples, arrival order
  std::unordered_map<int64_t, std::vector<std::promise<ForecastResult>>>
      pending_;

  mutable std::mutex cache_mu_;
  int64_t current_ = 0;
  int64_t cached_interval_ = -1;
  ForecastResult cached_;

  std::thread worker_;
};

}  // namespace odf::serve

#endif  // ODF_SERVE_SERVICE_H_
