#include "serve/forward_plan.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "nn/attention.h"
#include "nn/cheb_conv.h"
#include "nn/gcgru.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "tensor/fast_math.h"
#include "tensor/tensor_ops.h"

namespace odf::serve {

namespace {

/// Re-views `t` as `spec` at batch size `batch` (allocation-free: the
/// buffer's element count never changes within a plan).
void PrepareShape(Tensor* t, const BufShape& spec, int64_t batch) {
  const auto& cur = t->shape().dims();
  const int64_t lead = spec.mult * batch;
  bool same = cur.size() == spec.tail.size() + 1 && cur[0] == lead;
  for (size_t i = 0; same && i < spec.tail.size(); ++i) {
    same = cur[i + 1] == spec.tail[i];
  }
  if (!same) *t = std::move(*t).Reshape(spec.Dims(batch));
}

// -- fp64 plan glue (Exec64) -----------------------------------------------
//
// Shapes come from the float metadata tensors (PrepareShape keeps them in
// lock-step with the schedule); payloads live in the double arena. The glue
// helpers below are deliberately serial: they move little data, and serial
// loops are thread-invariant by construction. The hot kernels — GEMM, SpMM,
// wide Chebyshev basis, softmax, fused recover — run the same parallel
// width-templated code as the fp32 plan, whose per-element accumulation
// order is fixed at every thread count, so the whole fp64 plan is
// bit-identical across ODF_THREADS settings.

/// Permutes `src` (row-major, dims `in_dims`) by `perm` into `dst`, widening
/// on the fly when S and D differ. Same element mapping as PermuteInto (a
/// permutation is a pure relabeling, so any traversal yields identical
/// bytes); axes the permutation leaves in place at the tail are contiguous
/// with stride 1 in both layouts and are copied as one chunk instead of
/// element-by-element. Used by BOTH plan widths so the fp32 and fp64
/// schedules pay the same per-op cost.
template <typename S, typename D>
void PermuteRaw(const S* src, const std::vector<int64_t>& in_dims,
                const std::vector<int64_t>& perm, D* dst) {
  const int64_t rank = static_cast<int64_t>(in_dims.size());
  std::vector<int64_t> new_dims(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    new_dims[i] = in_dims[static_cast<size_t>(perm[i])];
  }
  std::vector<int64_t> in_strides(in_dims.size(), 1);
  for (int64_t d = rank - 2; d >= 0; --d) {
    const size_t du = static_cast<size_t>(d);
    in_strides[du] = in_strides[du + 1] * in_dims[du + 1];
  }
  std::vector<int64_t> src_strides(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    src_strides[i] = in_strides[static_cast<size_t>(perm[i])];
  }
  int64_t numel = 1;
  for (int64_t d : in_dims) numel *= d;
  int64_t chunk_rank = rank;
  int64_t chunk = 1;
  while (chunk_rank > 0 &&
         perm[static_cast<size_t>(chunk_rank - 1)] == chunk_rank - 1) {
    --chunk_rank;
    chunk *= new_dims[static_cast<size_t>(chunk_rank)];
  }
  if (chunk_rank == 0) {  // identity permutation: one straight copy
    for (int64_t i = 0; i < numel; ++i) dst[i] = static_cast<D>(src[i]);
    return;
  }
  std::vector<int64_t> index(static_cast<size_t>(chunk_rank), 0);
  int64_t si = 0;
  for (int64_t flat = 0; flat < numel; flat += chunk) {
    for (int64_t j = 0; j < chunk; ++j) {
      dst[flat + j] = static_cast<D>(src[si + j]);
    }
    for (int64_t d = chunk_rank - 1; d >= 0; --d) {
      const size_t du = static_cast<size_t>(d);
      ++index[du];
      si += src_strides[du];
      if (index[du] < new_dims[du]) break;
      si -= src_strides[du] * new_dims[du];
      index[du] = 0;
    }
  }
}

/// out = fn(a, b) with NumPy-style broadcasting; shapes come from the float
/// metadata tensors. Mirrors BroadcastBinaryInto's stride-0 odometer (the
/// same single fn application per element, so the float instantiation is
/// bit-identical to the facade); both plan widths call this so their per-op
/// overhead matches.
template <typename T, typename Fn>
void BroadcastBinaryRaw(const T* pa, const Tensor& am, const T* pb,
                        const Tensor& bm, T* po, const Tensor& om, Fn fn) {
  if (am.shape() == bm.shape()) {
    const int64_t numel = am.numel();
    for (int64_t i = 0; i < numel; ++i) po[i] = fn(pa[i], pb[i]);
    return;
  }
  const int64_t rank = om.rank();
  auto broadcast_strides = [&](const Tensor& t) {
    std::vector<int64_t> strides(static_cast<size_t>(rank), 0);
    const auto own = t.shape().Strides();
    const int64_t offset = rank - t.rank();
    for (int64_t i = 0; i < t.rank(); ++i) {
      if (t.dim(i) != 1) {
        strides[static_cast<size_t>(offset + i)] = own[static_cast<size_t>(i)];
      }
    }
    return strides;
  };
  const auto sa = broadcast_strides(am);
  const auto sb = broadcast_strides(bm);
  std::vector<int64_t> index(static_cast<size_t>(rank), 0);
  int64_t ai = 0;
  int64_t bi = 0;
  const int64_t numel = om.numel();
  for (int64_t flat = 0; flat < numel; ++flat) {
    po[flat] = fn(pa[ai], pb[bi]);
    for (int64_t d = rank - 1; d >= 0; --d) {
      const size_t du = static_cast<size_t>(d);
      ++index[du];
      ai += sa[du];
      bi += sb[du];
      if (index[du] < om.dim(d)) break;
      ai -= sa[du] * om.dim(d);
      bi -= sb[du] * om.dim(d);
      index[du] = 0;
    }
  }
}

/// Concat along `axis`; per-part shapes come from the float metadata.
void ConcatRaw64(const double* const* parts, const Tensor* const* metas,
                 size_t count, int64_t axis, double* po) {
  const Tensor& first = *metas[0];
  if (axis < 0) axis += first.rank();
  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= first.dim(d);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < first.rank(); ++d) inner *= first.dim(d);
  int64_t concat_dim = 0;
  for (size_t p = 0; p < count; ++p) concat_dim += metas[p]->dim(axis);
  const int64_t out_row = concat_dim * inner;
  int64_t dest_offset = 0;
  for (size_t p = 0; p < count; ++p) {
    const int64_t p_row = metas[p]->dim(axis) * inner;
    for (int64_t o = 0; o < outer; ++o) {
      const double* src = parts[p] + o * p_row;
      std::copy(src, src + p_row, po + o * out_row + dest_offset);
    }
    dest_offset += p_row;
  }
}

template <typename T>
void SliceRaw(const T* pa, const Tensor& am, int64_t axis,
              int64_t start, int64_t len, T* po) {
  if (axis < 0) axis += am.rank();
  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= am.dim(d);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < am.rank(); ++d) inner *= am.dim(d);
  const int64_t src_row = am.dim(axis) * inner;
  const int64_t dst_row = len * inner;
  for (int64_t o = 0; o < outer; ++o) {
    const T* src = pa + o * src_row + start * inner;
    std::copy(src, src + dst_row, po + o * dst_row);
  }
}

/// Sum over `axis` with keepdim, ascending accumulation like SumInto.
void SumKeepRaw64(const double* pa, const Tensor& am, int64_t axis,
                  double* po) {
  if (axis < 0) axis += am.rank();
  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= am.dim(d);
  const int64_t mid = am.dim(axis);
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < am.rank(); ++d) inner *= am.dim(d);
  std::fill(po, po + outer * inner, 0.0);
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t m = 0; m < mid; ++m) {
      const double* src = pa + (o * mid + m) * inner;
      double* dst = po + o * inner;
      for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
}

/// Width-templated port of nn::GraphPoolForwardInto (no argmax: serving
/// never needs the max-pool backward indices, and dropping the per-update
/// argmax branch keeps the inner loops tight). Per-element operation order —
/// cluster-order accumulate then one inverse multiply, or the same
/// compare-and-replace chain — matches the facade exactly, so the float
/// instantiation is bit-identical to the tape's GraphPool.
// Four-cells-per-step average pooling over the batch-divisible prefix,
// with the feature width as a compile-time constant when it matches one of
// the widths the model actually runs (F == 0 keeps it a runtime value).
// Constant trip counts let the compiler emit straight-line vector code for
// the three per-cluster loops, whose setup otherwise dominates at
// single-digit feature widths.
template <int64_t F, typename T>
int64_t GraphPoolAvgQuad(const T* x, int64_t batch, int64_t n,
                         int64_t features,
                         const std::vector<std::vector<int64_t>>& clusters,
                         T* out) {
  const int64_t nf = F > 0 ? F : features;
  const int64_t nc = static_cast<int64_t>(clusters.size());
  int64_t b = 0;
  for (; b + 4 <= batch; b += 4) {
    for (int64_t c = 0; c < nc; ++c) {
      const auto& cluster = clusters[static_cast<size_t>(c)];
      T* d0 = out + ((b + 0) * nc + c) * nf;
      T* d1 = out + ((b + 1) * nc + c) * nf;
      T* d2 = out + ((b + 2) * nc + c) * nf;
      T* d3 = out + ((b + 3) * nc + c) * nf;
      for (int64_t f = 0; f < nf; ++f) {
        d0[f] = T(0);
        d1[f] = T(0);
        d2[f] = T(0);
        d3[f] = T(0);
      }
      for (int64_t i : cluster) {
        const T* s0 = x + ((b + 0) * n + i) * nf;
        const T* s1 = x + ((b + 1) * n + i) * nf;
        const T* s2 = x + ((b + 2) * n + i) * nf;
        const T* s3 = x + ((b + 3) * n + i) * nf;
        for (int64_t f = 0; f < nf; ++f) {
          d0[f] += s0[f];
          d1[f] += s1[f];
          d2[f] += s2[f];
          d3[f] += s3[f];
        }
      }
      const T inv = T(1) / static_cast<T>(cluster.size());
      for (int64_t f = 0; f < nf; ++f) {
        d0[f] *= inv;
        d1[f] *= inv;
        d2[f] *= inv;
        d3[f] *= inv;
      }
    }
  }
  return b;
}

template <typename T>
void GraphPoolRaw(const T* x, int64_t batch, int64_t n, int64_t features,
                  const std::vector<std::vector<int64_t>>& clusters,
                  nn::PoolKind kind, T* out) {
  const int64_t nc = static_cast<int64_t>(clusters.size());
  int64_t b = 0;
  if (kind == nn::PoolKind::kAverage) {
    // Four batch cells per step: the accumulate chains through the
    // destination row, and at the serving feature widths (single-digit) one
    // row is a single vector, so a lone cell serializes on that store-load
    // chain. Four independent cells cover the add latency. Each output cell
    // still accumulates its own cluster rows in cluster order, so results
    // are bit-identical to the one-cell-at-a-time facade.
    switch (features) {
      case 7:
        b = GraphPoolAvgQuad<7>(x, batch, n, features, clusters, out);
        break;
      case 8:
        b = GraphPoolAvgQuad<8>(x, batch, n, features, clusters, out);
        break;
      default:
        b = GraphPoolAvgQuad<0>(x, batch, n, features, clusters, out);
        break;
    }
  }
  for (; b < batch; ++b) {
    for (int64_t c = 0; c < nc; ++c) {
      const auto& cluster = clusters[static_cast<size_t>(c)];
      T* dst = out + (b * nc + c) * features;
      if (kind == nn::PoolKind::kAverage) {
        for (int64_t f = 0; f < features; ++f) dst[f] = T(0);
        for (int64_t i : cluster) {
          const T* src = x + (b * n + i) * features;
          for (int64_t f = 0; f < features; ++f) dst[f] += src[f];
        }
        const T inv = T(1) / static_cast<T>(cluster.size());
        for (int64_t f = 0; f < features; ++f) dst[f] *= inv;
      } else {
        for (int64_t f = 0; f < features; ++f) {
          dst[f] = -std::numeric_limits<T>::infinity();
        }
        for (int64_t i : cluster) {
          const T* src = x + (b * n + i) * features;
          for (int64_t f = 0; f < features; ++f) {
            if (src[f] > dst[f]) dst[f] = src[f];
          }
        }
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ForwardPlan execution
// ---------------------------------------------------------------------------

void ForwardPlan::EnsureBatch(int64_t batch) {
  if (batch == batch_) return;
  batch_ = batch;
  bufs_.clear();
  bufs_.reserve(specs_.size());
  for (const BufShape& spec : specs_) {
    bufs_.emplace_back(Shape(spec.Dims(batch)));
  }
  if (precision_ == Precision::kFp64) {
    dbufs_.assign(specs_.size(), {});
    for (size_t i = 0; i < specs_.size(); ++i) {
      dbufs_[i].assign(static_cast<size_t>(specs_[i].NumelPerBatch() * batch),
                       0.0);
    }
  }
}

void ForwardPlan::Exec(const Instr& ins, const std::vector<Tensor>& inputs) {
  Tensor& out = bufs_[static_cast<size_t>(ins.out)];
  PrepareShape(&out, ins.shape, batch_);
  switch (ins.kind) {
    case OpKind::kLoadInput: {
      const Tensor& in = inputs[static_cast<size_t>(ins.input_index)];
      std::copy(in.data(), in.data() + in.numel(),
                out.data() + ins.start * batch_);
      break;
    }
    case OpKind::kLoadInputPermuted: {
      const Tensor& in = inputs[static_cast<size_t>(ins.input_index)];
      PermuteRaw(in.data(), in.shape().dims(), ins.perm, out.data());
      break;
    }
    case OpKind::kReshape:
      break;  // PrepareShape did the work
    case OpKind::kCopy: {
      const Tensor& a = bufs_[static_cast<size_t>(ins.a)];
      std::copy(a.data(), a.data() + a.numel(), out.data());
      break;
    }
    case OpKind::kSliceRows: {
      const float* src =
          bufs_[static_cast<size_t>(ins.a)].data() + ins.start * batch_;
      std::copy(src, src + out.numel(), out.data());
      break;
    }
    case OpKind::kStackRows: {
      const Tensor& a = bufs_[static_cast<size_t>(ins.a)];
      std::copy(a.data(), a.data() + a.numel(),
                out.data() + ins.start * batch_);
      break;
    }
    case OpKind::kZero:
      std::fill(out.data(), out.data() + out.numel(), 0.0f);
      break;
    case OpKind::kAdd: {
      const Tensor& a = bufs_[static_cast<size_t>(ins.a)];
      const Tensor& b = bufs_[static_cast<size_t>(ins.b)];
      BroadcastBinaryRaw(a.data(), a, b.data(), b, out.data(), out,
                         [](float x, float y) { return x + y; });
      break;
    }
    case OpKind::kMul: {
      const Tensor& a = bufs_[static_cast<size_t>(ins.a)];
      const Tensor& b = bufs_[static_cast<size_t>(ins.b)];
      BroadcastBinaryRaw(a.data(), a, b.data(), b, out.data(), out,
                         [](float x, float y) { return x * y; });
      break;
    }
    case OpKind::kAddBiasW: {
      // Bias broadcast over the last axis, written as the plain 2-D loop:
      // per element the identical single addition AddInto performs, minus
      // its shape machinery (biases are rank-1; asserted at compile).
      const Tensor& a = bufs_[static_cast<size_t>(ins.a)];
      const Tensor& bias = weights_[static_cast<size_t>(ins.w)];
      const int64_t cols = bias.numel();
      const int64_t rows = a.numel() / cols;
      const float* ap = a.data();
      const float* bp = bias.data();
      float* op = out.data();
      for (int64_t r = 0; r < rows; ++r, ap += cols, op += cols) {
        for (int64_t j = 0; j < cols; ++j) op[j] = ap[j] + bp[j];
      }
      break;
    }
    case OpKind::kAddScalar: {
      const float* ap = bufs_[static_cast<size_t>(ins.a)].data();
      const int64_t numel = out.numel();
      float* po = out.data();
      for (int64_t i = 0; i < numel; ++i) po[i] = ap[i] + ins.scalar;
      break;
    }
    case OpKind::kMulScalar: {
      const float* ap = bufs_[static_cast<size_t>(ins.a)].data();
      const int64_t numel = out.numel();
      float* po = out.data();
      for (int64_t i = 0; i < numel; ++i) po[i] = ap[i] * ins.scalar;
      break;
    }
    case OpKind::kSigmoid:
      SigmoidInto(bufs_[static_cast<size_t>(ins.a)], &out);
      break;
    case OpKind::kTanh:
      TanhInto(bufs_[static_cast<size_t>(ins.a)], &out);
      break;
    case OpKind::kRelu:
      ReluInto(bufs_[static_cast<size_t>(ins.a)], &out);
      break;
    case OpKind::kMatMulW:
      if (ins.prepacked) {
        MatMulPrepackedInto(bufs_[static_cast<size_t>(ins.a)],
                            packed_[static_cast<size_t>(ins.w)], &out);
      } else {
        MatMulInto(bufs_[static_cast<size_t>(ins.a)],
                   weights_[static_cast<size_t>(ins.w)], &out);
      }
      break;
    case OpKind::kBatchMatMulW:
      if (ins.prepacked) {
        // [B', r, k] x [k, n] flattens to one [B'·r, k] x [k, n] product —
        // each output row accumulates the same k-ascending sum either way.
        MatMulPrepackedInto(bufs_[static_cast<size_t>(ins.a)],
                            packed_[static_cast<size_t>(ins.w)], &out);
      } else {
        BatchMatMulInto(bufs_[static_cast<size_t>(ins.a)],
                        weights_[static_cast<size_t>(ins.w)], &out);
      }
      break;
    case OpKind::kConcat2: {
      const Tensor* parts[2] = {&bufs_[static_cast<size_t>(ins.a)],
                                &bufs_[static_cast<size_t>(ins.b)]};
      ConcatInto(parts, 2, ins.axis, &out);
      break;
    }
    case OpKind::kConcatN: {
      concat_scratch_.clear();
      for (int32_t src : ins.srcs) {
        concat_scratch_.push_back(&bufs_[static_cast<size_t>(src)]);
      }
      ConcatInto(concat_scratch_.data(), concat_scratch_.size(), ins.axis,
                 &out);
      break;
    }
    case OpKind::kSlice: {
      const Tensor& a = bufs_[static_cast<size_t>(ins.a)];
      SliceRaw(a.data(), a, ins.axis, ins.start, ins.len, out.data());
      break;
    }
    case OpKind::kSumKeep:
      SumInto(bufs_[static_cast<size_t>(ins.a)], ins.axis, /*keepdim=*/true,
              &out);
      break;
    case OpKind::kSoftmax:
      SoftmaxLastDimInto(bufs_[static_cast<size_t>(ins.a)], &out);
      break;
    case OpKind::kPermute: {
      const Tensor& a = bufs_[static_cast<size_t>(ins.a)];
      PermuteRaw(a.data(), a.shape().dims(), ins.perm, out.data());
      break;
    }
    case OpKind::kChebBasis: {
      // Same raw kernel the facade wraps; the compiler already sized every
      // buffer, so the facade's per-call Shape construction is skipped.
      const Tensor& x = bufs_[static_cast<size_t>(ins.a)];
      const CsrMatrix& csr = ins.graph->csr();
      ChebyshevBasisWideRaw(
          ins.graph->use_sparse() ? nullptr : ins.graph->dense().data(),
          csr.row_ptr().data(), csr.col_idx().data(), csr.values().data(),
          csr.nnz(), x.dim(1), x.data(), x.dim(0), x.dim(2), ins.order,
          out.data(), bufs_[static_cast<size_t>(ins.srcs[0])].data(),
          bufs_[static_cast<size_t>(ins.srcs[1])].data(),
          bufs_[static_cast<size_t>(ins.srcs[2])].data());
      break;
    }
    case OpKind::kGraphApply: {
      // The same kernels ag::SpMM's forward dispatches to (tiled CSR SpMM /
      // batched blocked GEMM), so the diffusion and adaptive tap chains
      // match the tape bit for bit.
      GraphApplyInto(*ins.graph, bufs_[static_cast<size_t>(ins.a)], &out);
      break;
    }
    case OpKind::kGraphPool: {
      const Tensor& x = bufs_[static_cast<size_t>(ins.a)];
      GraphPoolRaw(x.data(), x.dim(0), x.dim(1), x.dim(2), *ins.clusters,
                   ins.pool, out.data());
      break;
    }
    case OpKind::kRecover: {
      const Tensor& r = bufs_[static_cast<size_t>(ins.a)];  // [B, n, beta, k]
      FusedRecoverRaw(r.data(), bufs_[static_cast<size_t>(ins.b)].data(),
                      weights_[static_cast<size_t>(ins.w)][0], out.data(),
                      out.dim(0), out.dim(1), out.dim(2), r.dim(2),
                      out.dim(3));
      break;
    }
  }
}

void ForwardPlan::Exec64(const Instr& ins, const std::vector<Tensor>& inputs) {
  // The float buffer tracks the instruction's output view so operand shapes
  // stay in lock-step with Exec's schedule; its payload is never touched.
  Tensor& out = bufs_[static_cast<size_t>(ins.out)];
  PrepareShape(&out, ins.shape, batch_);
  double* po = dbufs_[static_cast<size_t>(ins.out)].data();
  const auto dat = [&](int32_t id) -> const double* {
    return dbufs_[static_cast<size_t>(id)].data();
  };
  const auto meta = [&](int32_t id) -> const Tensor& {
    return bufs_[static_cast<size_t>(id)];
  };
  switch (ins.kind) {
    case OpKind::kLoadInput: {
      const Tensor& in = inputs[static_cast<size_t>(ins.input_index)];
      const float* src = in.data();
      double* dst = po + ins.start * batch_;
      const int64_t numel = in.numel();
      for (int64_t i = 0; i < numel; ++i) dst[i] = static_cast<double>(src[i]);
      break;
    }
    case OpKind::kLoadInputPermuted: {
      const Tensor& in = inputs[static_cast<size_t>(ins.input_index)];
      PermuteRaw(in.data(), in.shape().dims(), ins.perm, po);
      break;
    }
    case OpKind::kReshape:
      break;  // PrepareShape did the work
    case OpKind::kCopy: {
      const double* src = dat(ins.a);
      std::copy(src, src + meta(ins.a).numel(), po);
      break;
    }
    case OpKind::kSliceRows: {
      const double* src = dat(ins.a) + ins.start * batch_;
      std::copy(src, src + out.numel(), po);
      break;
    }
    case OpKind::kStackRows: {
      const double* src = dat(ins.a);
      std::copy(src, src + meta(ins.a).numel(), po + ins.start * batch_);
      break;
    }
    case OpKind::kZero:
      std::fill(po, po + out.numel(), 0.0);
      break;
    case OpKind::kAdd:
      BroadcastBinaryRaw(dat(ins.a), meta(ins.a), dat(ins.b), meta(ins.b),
                         po, out, [](double x, double y) { return x + y; });
      break;
    case OpKind::kMul:
      BroadcastBinaryRaw(dat(ins.a), meta(ins.a), dat(ins.b), meta(ins.b),
                         po, out, [](double x, double y) { return x * y; });
      break;
    case OpKind::kAddBiasW: {
      const std::vector<double>& bias = dweights_[static_cast<size_t>(ins.w)];
      const int64_t cols = static_cast<int64_t>(bias.size());
      const int64_t rows = meta(ins.a).numel() / cols;
      const double* ap = dat(ins.a);
      const double* bp = bias.data();
      double* op = po;
      for (int64_t r = 0; r < rows; ++r, ap += cols, op += cols) {
        for (int64_t j = 0; j < cols; ++j) op[j] = ap[j] + bp[j];
      }
      break;
    }
    case OpKind::kAddScalar: {
      const double s = static_cast<double>(ins.scalar);
      const double* ap = dat(ins.a);
      const int64_t numel = out.numel();
      for (int64_t i = 0; i < numel; ++i) po[i] = ap[i] + s;
      break;
    }
    case OpKind::kMulScalar: {
      const double s = static_cast<double>(ins.scalar);
      const double* ap = dat(ins.a);
      const int64_t numel = out.numel();
      for (int64_t i = 0; i < numel; ++i) po[i] = ap[i] * s;
      break;
    }
    case OpKind::kSigmoid: {
      const double* ap = dat(ins.a);
      const int64_t numel = out.numel();
      for (int64_t i = 0; i < numel; ++i) po[i] = FastSigmoid(ap[i]);
      break;
    }
    case OpKind::kTanh: {
      const double* ap = dat(ins.a);
      const int64_t numel = out.numel();
      for (int64_t i = 0; i < numel; ++i) po[i] = FastTanh(ap[i]);
      break;
    }
    case OpKind::kRelu: {
      const double* ap = dat(ins.a);
      const int64_t numel = out.numel();
      for (int64_t i = 0; i < numel; ++i) po[i] = ap[i] > 0 ? ap[i] : 0.0;
      break;
    }
    case OpKind::kMatMulW:
    case OpKind::kBatchMatMulW:
      // Both flatten to one [rows, k] x [k, n] product over the double
      // weight snapshot (the fp32 plan's batched case does the same).
      if (ins.prepacked) {
        const PackedGemmB64& p = dpacked_[static_cast<size_t>(ins.w)];
        MatMulPrepackedRaw(dat(ins.a), meta(ins.a).numel() / p.k, p, po);
      } else {
        const Tensor& w = weights_[static_cast<size_t>(ins.w)];
        ODF_CHECK_EQ(w.rank(), 2);
        const int64_t k = w.dim(0);
        const int64_t n = w.dim(1);
        const int64_t rows = meta(ins.a).numel() / k;
        // GemmRawInto accumulates; start from zero like a fresh Tensor.
        std::fill(po, po + rows * n, 0.0);
        GemmRawInto(dat(ins.a), dweights_[static_cast<size_t>(ins.w)].data(),
                    po, rows, k, n);
      }
      break;
    case OpKind::kConcat2: {
      const double* parts[2] = {dat(ins.a), dat(ins.b)};
      const Tensor* metas[2] = {&meta(ins.a), &meta(ins.b)};
      ConcatRaw64(parts, metas, 2, ins.axis, po);
      break;
    }
    case OpKind::kConcatN: {
      std::vector<const double*> parts;
      std::vector<const Tensor*> metas;
      parts.reserve(ins.srcs.size());
      metas.reserve(ins.srcs.size());
      for (int32_t src : ins.srcs) {
        parts.push_back(dat(src));
        metas.push_back(&meta(src));
      }
      ConcatRaw64(parts.data(), metas.data(), parts.size(), ins.axis, po);
      break;
    }
    case OpKind::kSlice:
      SliceRaw(dat(ins.a), meta(ins.a), ins.axis, ins.start, ins.len, po);
      break;
    case OpKind::kSumKeep:
      SumKeepRaw64(dat(ins.a), meta(ins.a), ins.axis, po);
      break;
    case OpKind::kSoftmax: {
      const Tensor& a = meta(ins.a);
      const int64_t inner = a.dim(-1);
      SoftmaxRowsRaw(dat(ins.a), po, a.numel() / inner, inner);
      break;
    }
    case OpKind::kPermute:
      PermuteRaw(dat(ins.a), meta(ins.a).shape().dims(), ins.perm, po);
      break;
    case OpKind::kChebBasis: {
      const GraphData64* g = nullptr;
      for (const GraphData64& cand : graph64_) {
        if (cand.op == ins.graph.get()) {
          g = &cand;
          break;
        }
      }
      ODF_CHECK(g != nullptr) << "fp64 plan missing graph snapshot";
      const Tensor& x = meta(ins.a);
      const CsrMatrix& csr = ins.graph->csr();
      ChebyshevBasisWideRaw(
          g->dense.empty() ? nullptr : g->dense.data(), csr.row_ptr().data(),
          csr.col_idx().data(), g->csr_values.data(), csr.nnz(), x.dim(1),
          dat(ins.a), x.dim(0), x.dim(2), ins.order, po,
          dbufs_[static_cast<size_t>(ins.srcs[0])].data(),
          dbufs_[static_cast<size_t>(ins.srcs[1])].data(),
          dbufs_[static_cast<size_t>(ins.srcs[2])].data());
      break;
    }
    case OpKind::kGraphApply: {
      const GraphData64* g = nullptr;
      for (const GraphData64& cand : graph64_) {
        if (cand.op == ins.graph.get()) {
          g = &cand;
          break;
        }
      }
      ODF_CHECK(g != nullptr) << "fp64 plan missing graph snapshot";
      const Tensor& x = meta(ins.a);
      const CsrMatrix& csr = ins.graph->csr();
      GraphApplyRaw64(g->dense.empty() ? nullptr : g->dense.data(),
                      csr.row_ptr().data(), csr.col_idx().data(),
                      g->csr_values.data(), csr.nnz(), x.dim(1), dat(ins.a),
                      x.dim(0), x.dim(2), po);
      break;
    }
    case OpKind::kGraphPool: {
      const Tensor& x = meta(ins.a);
      GraphPoolRaw(dat(ins.a), x.dim(0), x.dim(1), x.dim(2), *ins.clusters,
                   ins.pool, po);
      break;
    }
    case OpKind::kRecover: {
      const Tensor& r = meta(ins.a);  // [B, n, beta, k]
      FusedRecoverRaw(dat(ins.a), dat(ins.b),
                      dweights_[static_cast<size_t>(ins.w)][0], po, out.dim(0),
                      out.dim(1), out.dim(2), r.dim(2), out.dim(3));
      break;
    }
  }
}

void ForwardPlan::LowerToFp64() {
  precision_ = Precision::kFp64;
  dweights_.clear();
  dweights_.reserve(weights_.size());
  for (const Tensor& w : weights_) {
    std::vector<double> dw(static_cast<size_t>(w.numel()));
    const float* p = w.data();
    for (int64_t i = 0; i < w.numel(); ++i) dw[static_cast<size_t>(i)] = p[i];
    dweights_.push_back(std::move(dw));
  }
  dpacked_.clear();
  dpacked_.resize(packed_.size());
  for (size_t i = 0; i < packed_.size(); ++i) {
    if (packed_[i].panels.empty()) continue;
    const Tensor& w = weights_[i];
    dpacked_[i] = PackGemmWeightRaw(dweights_[i].data(), w.dim(0), w.dim(1));
  }
  graph64_.clear();
  graph64_.reserve(graph_ops_.size());
  for (const auto& op : graph_ops_) {
    GraphData64 g;
    g.op = op.get();
    if (op->use_sparse()) {
      const std::vector<float>& v = op->csr().values();
      g.csr_values.assign(v.begin(), v.end());
    } else {
      const Tensor& d = op->dense();
      g.dense.resize(static_cast<size_t>(d.numel()));
      const float* p = d.data();
      for (int64_t i = 0; i < d.numel(); ++i) {
        g.dense[static_cast<size_t>(i)] = p[i];
      }
    }
    graph64_.push_back(std::move(g));
  }
  batch_ = -1;  // force the next Run to allocate the double arena
}

void ForwardPlan::Run(const std::vector<Tensor>& inputs) {
  ODF_CHECK_EQ(static_cast<int64_t>(inputs.size()), history_)
      << "plan compiled for a different history length";
  const int64_t batch = inputs.front().dim(0);
  ODF_CHECK_GT(batch, 0);
  for (const Tensor& in : inputs) {
    ODF_CHECK_EQ(in.rank(), static_cast<int64_t>(input_tail_.size()) + 1);
    ODF_CHECK_EQ(in.dim(0), batch);
    for (size_t d = 0; d < input_tail_.size(); ++d) {
      ODF_CHECK_EQ(in.dim(static_cast<int64_t>(d) + 1), input_tail_[d]);
    }
  }
  EnsureBatch(batch);

  static Histogram& run_hist =
      MetricsRegistry::Global().GetHistogram("serve.plan.run_seconds");
  ScopedTimer run_timer(run_hist);
  const bool metrics = MetricsEnabled();
  if (metrics) {
    static Counter& runs =
        MetricsRegistry::Global().GetCounter("serve.plan.runs");
    runs.Add(1);
  }
  const bool fp64 = precision_ == Precision::kFp64;
  for (const Phase& phase : phases_) {
    const uint64_t start = metrics ? MonotonicNanos() : 0;
    if (fp64) {
      for (size_t i = phase.begin; i < phase.end; ++i) {
        Exec64(instrs_[i], inputs);
      }
    } else {
      for (size_t i = phase.begin; i < phase.end; ++i) {
        Exec(instrs_[i], inputs);
      }
    }
    if (metrics && phase.hist != nullptr) {
      phase.hist->Record(MonotonicNanos() - start);
    }
  }
  if (fp64) {
    // Outputs narrow once at plan exit, so output(j) serves the same float
    // tensors either way.
    for (int32_t id : outputs_) {
      const std::vector<double>& src = dbufs_[static_cast<size_t>(id)];
      Tensor& dst = bufs_[static_cast<size_t>(id)];
      float* p = dst.data();
      const int64_t numel = dst.numel();
      for (int64_t i = 0; i < numel; ++i) {
        p[i] = static_cast<float>(src[static_cast<size_t>(i)]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// PlanCompiler: schedule assembly
// ---------------------------------------------------------------------------

int32_t PlanCompiler::NewBuf(BufShape spec) {
  shapes_.push_back(spec);
  plan_.specs_.push_back(std::move(spec));
  return static_cast<int32_t>(plan_.specs_.size() - 1);
}

int32_t PlanCompiler::AddWeight(const autograd::Var& v) {
  // Dedup by source address (weights repeat across unrolled steps), then
  // snapshot the tensor: the plan owns its parameter values.
  const Tensor* key = &v.value();
  const auto it = weight_ids_.find(key);
  if (it != weight_ids_.end()) return it->second;
  plan_.weights_.push_back(v.value());
  plan_.packed_.emplace_back();
  const int32_t id = static_cast<int32_t>(plan_.weights_.size() - 1);
  weight_ids_[key] = id;
  return id;
}

void PlanCompiler::MaybePrepack(Instr& mm, const BufShape& os) {
  PackedGemmB& packed = plan_.packed_[static_cast<size_t>(mm.w)];
  const Tensor& w = plan_.weights_[static_cast<size_t>(mm.w)];
  if (w.rank() != 2) return;
  // Rows at batch 1; runtime batches only multiply the count, so viability
  // at compile time implies viability at every batch size.
  const int64_t rows = os.NumelPerBatch() / w.dim(1);
  if (!PrepackedGemmViable(rows, w.dim(0), w.dim(1))) return;
  if (packed.panels.empty()) packed = PackGemmWeight(w);
  mm.prepacked = true;
}

void PlanCompiler::EnsureWideScratch(int64_t numel_per_batch) {
  if (wide_scratch_[0] < 0) {
    for (int i = 0; i < 3; ++i) {
      wide_scratch_[i] = NewBuf({numel_per_batch, {}});
    }
    return;
  }
  // One set of flat buffers serves every basis site (the schedule is
  // sequential); grow them to the largest per-batch element count seen.
  for (int i = 0; i < 3; ++i) {
    BufShape& spec = plan_.specs_[static_cast<size_t>(wide_scratch_[i])];
    spec.mult = std::max(spec.mult, numel_per_batch);
    shapes_[static_cast<size_t>(wide_scratch_[i])] = spec;
  }
}

Instr& PlanCompiler::Emit(OpKind kind, int32_t out, BufShape shape) {
  ODF_CHECK_GE(out, 0);
  ODF_CHECK_EQ(shape.NumelPerBatch(),
               plan_.specs_[static_cast<size_t>(out)].NumelPerBatch())
      << "instruction output view must preserve the buffer's element count";
  shapes_[static_cast<size_t>(out)] = shape;
  Instr ins;
  ins.kind = kind;
  ins.out = out;
  ins.shape = std::move(shape);
  plan_.instrs_.push_back(std::move(ins));
  return plan_.instrs_.back();
}

void PlanCompiler::BeginPhase(const char* name) {
  if (!plan_.phases_.empty()) {
    plan_.phases_.back().end = plan_.instrs_.size();
  }
  ForwardPlan::Phase phase;
  phase.name = name;
  phase.begin = plan_.instrs_.size();
  phase.hist = &MetricsRegistry::Global().GetHistogram(
      std::string("serve.plan.") + name + "_seconds");
  plan_.phases_.push_back(phase);
}

void PlanCompiler::AddGraph(const std::shared_ptr<const GraphOperator>& op) {
  for (const auto& existing : plan_.graph_ops_) {
    if (existing.get() == op.get()) return;
  }
  plan_.graph_ops_.push_back(op);
}

const BufShape& PlanCompiler::ShapeOf(int32_t buf) const {
  return shapes_[static_cast<size_t>(buf)];
}

void PlanCompiler::Reshape(int32_t buf, BufShape shape) {
  Emit(OpKind::kReshape, buf, std::move(shape));
}

std::vector<int32_t>& PlanCompiler::Scratch(const void* key) {
  return scratch_[key];
}

// ---------------------------------------------------------------------------
// PlanCompiler: module lowering
// ---------------------------------------------------------------------------

int32_t PlanCompiler::EmitChebTaps(
    const std::shared_ptr<const GraphOperator>& op, int32_t x, int64_t order,
    int32_t taps) {
  if (order == 1) return x;  // ChebyshevStack returns its input verbatim
  const BufShape xs = ShapeOf(x);
  EnsureWideScratch(xs.NumelPerBatch());
  Instr& ins =
      Emit(OpKind::kChebBasis, taps,
           BufShape{xs.mult, {xs.tail[0], order * xs.tail[1]}});
  ins.a = x;
  ins.order = order;
  ins.graph = op;
  ins.srcs = {wide_scratch_[0], wide_scratch_[1], wide_scratch_[2]};
  AddGraph(op);
  return taps;
}

void PlanCompiler::EmitGraphApply(
    const std::shared_ptr<const GraphOperator>& op, int32_t x, int32_t out) {
  Instr& ins = Emit(OpKind::kGraphApply, out, ShapeOf(x));
  ins.a = x;
  ins.graph = op;
  AddGraph(op);
}

// Mirrors GraphBasis::Stack — see nn/graph_basis.cc for the tape ops. The
// tape's Sub(MulScalar(·, 2), prev2) recurrence combiner is replayed as
// kMulScalar(2) + kMulScalar(−1) + kAdd, which is bitwise the same sum
// (IEEE a − b ≡ a + (−1·b)); prev2 part buffers stay live for the final
// concat, so the negation lands in a dedicated scratch buffer.
int32_t PlanCompiler::EmitBasisTaps(const nn::GraphBasis& basis, int32_t x,
                                    int32_t taps) {
  if (basis.taps() == 1) return x;  // Stack returns its input verbatim
  if (basis.kind() == nn::GraphOpKind::kChebyshev &&
      basis.correlation_op() == nullptr) {
    // Single-component Chebyshev keeps the fused wide-layout kernel — the
    // exact legacy schedule, bit-identical to ChebyshevStack.
    return EmitChebTaps(basis.primary_op(), x, basis.order(), taps);
  }
  const BufShape xs = ShapeOf(x);
  ODF_CHECK_EQ(xs.tail.size(), 2u);
  const int64_t n = xs.tail[0];
  const int64_t f = xs.tail[1];
  const BufShape part_shape{xs.mult, {n, f}};
  const int64_t order = basis.order();
  // Keyed by the taps buffer: one basis serves call sites of different
  // feature widths (gate stack vs output head), which must not share parts.
  std::vector<int32_t>& s = basis_scratch_[taps];
  std::vector<int32_t> srcs;
  switch (basis.kind()) {
    case nn::GraphOpKind::kChebyshev: {
      // Fused main component ∥ correlation tail (taps 2..order; tap 1 is
      // the shared identity x), exactly the tape's part list.
      const int64_t tail = order - 1;
      if (s.empty()) {
        s.push_back(NewBuf({xs.mult, {n, order * f}}));  // 0: fused main
        for (int64_t i = 0; i <= tail; ++i) {
          s.push_back(NewBuf(part_shape));  // 1..tail: parts; last: −prev2
        }
      }
      EmitChebTaps(basis.primary_op(), x, order, s[0]);
      srcs.push_back(s[0]);
      const int32_t neg = s[static_cast<size_t>(tail) + 1];
      EmitGraphApply(basis.correlation_op(), x, s[1]);
      srcs.push_back(s[1]);
      int32_t prev2 = x;
      int32_t prev = s[1];
      for (int64_t i = 2; i <= tail; ++i) {
        const int32_t cur = s[static_cast<size_t>(i)];
        EmitGraphApply(basis.correlation_op(), prev, cur);
        Instr& twice = Emit(OpKind::kMulScalar, cur, part_shape);
        twice.a = cur;
        twice.scalar = 2.0f;
        Instr& flip = Emit(OpKind::kMulScalar, neg, part_shape);
        flip.a = prev2;
        flip.scalar = -1.0f;
        Instr& sub = Emit(OpKind::kAdd, cur, part_shape);
        sub.a = cur;
        sub.b = neg;
        srcs.push_back(cur);
        prev2 = prev;
        prev = cur;
      }
      break;
    }
    case nn::GraphOpKind::kDiffusion: {
      const int64_t powers = order - 1;
      if (s.empty()) {
        for (int64_t i = 0; i < 2 * powers; ++i) {
          s.push_back(NewBuf(part_shape));
        }
      }
      srcs.push_back(x);
      int32_t prev = x;
      for (int64_t k = 0; k < powers; ++k) {
        EmitGraphApply(basis.primary_op(), prev, s[static_cast<size_t>(k)]);
        prev = s[static_cast<size_t>(k)];
        srcs.push_back(prev);
      }
      prev = x;
      for (int64_t k = 0; k < powers; ++k) {
        const int32_t cur = s[static_cast<size_t>(powers + k)];
        EmitGraphApply(basis.secondary_op(), prev, cur);
        prev = cur;
        srcs.push_back(prev);
      }
      break;
    }
    case nn::GraphOpKind::kAdaptive: {
      // The adjacency is frozen at compile time (weights are snapshots):
      // softmax(relu(E_o·E_dᵀ)) computed with the tape's own kernels, then
      // wrapped dense so kGraphApply runs the same BatchMatMul the tape's
      // broadcast rank-2 BatchMatMul runs.
      std::shared_ptr<const GraphOperator>& a_op = adaptive_ops_[&basis];
      if (a_op == nullptr) {
        a_op = GraphOperator::Make(basis.AdaptiveAdjacency(),
                                   /*force_sparse=*/0);
      }
      const int64_t tail = order - 1;
      if (s.empty()) {
        for (int64_t i = 0; i <= tail; ++i) {
          s.push_back(NewBuf(part_shape));  // 0..tail−1: parts; tail: −prev2
        }
      }
      const int32_t neg = s[static_cast<size_t>(tail)];
      srcs.push_back(x);
      EmitGraphApply(a_op, x, s[0]);
      srcs.push_back(s[0]);
      int32_t prev2 = x;
      int32_t prev = s[0];
      for (int64_t i = 1; i < tail; ++i) {
        const int32_t cur = s[static_cast<size_t>(i)];
        EmitGraphApply(a_op, prev, cur);
        Instr& twice = Emit(OpKind::kMulScalar, cur, part_shape);
        twice.a = cur;
        twice.scalar = 2.0f;
        Instr& flip = Emit(OpKind::kMulScalar, neg, part_shape);
        flip.a = prev2;
        flip.scalar = -1.0f;
        Instr& sub = Emit(OpKind::kAdd, cur, part_shape);
        sub.a = cur;
        sub.b = neg;
        srcs.push_back(cur);
        prev2 = prev;
        prev = cur;
      }
      break;
    }
  }
  Instr& cat = Emit(OpKind::kConcatN, taps,
                    BufShape{xs.mult, {n, basis.taps() * f}});
  cat.srcs = std::move(srcs);
  cat.axis = 2;
  return taps;
}

int32_t PlanCompiler::EmitChebConv(const nn::ChebConv& conv, int32_t x,
                                   int32_t out) {
  const BufShape xs = ShapeOf(x);
  ODF_CHECK_EQ(xs.tail.size(), 2u);
  ODF_CHECK_EQ(xs.tail[1], conv.in_features_);
  const BufShape os{xs.mult, {xs.tail[0], conv.out_features_}};
  const nn::GraphBasis& basis = *conv.basis_;
  std::vector<int32_t>& s = Scratch(&conv);
  if (s.empty()) {
    s.push_back(basis.taps() > 1
                    ? NewBuf({xs.mult,
                              {xs.tail[0], basis.taps() * conv.in_features_}})
                    : -1);      // 0: basis tap stack
    s.push_back(NewBuf(os));    // 1: basis · theta
    s.push_back(NewBuf(os));    // 2: + bias (when no explicit out)
  }
  const int32_t taps = EmitBasisTaps(basis, x, s[0]);
  if (!conv.with_bias_) {
    const int32_t dst = out >= 0 ? out : s[1];
    Instr& mm = Emit(OpKind::kBatchMatMulW, dst, os);
    mm.a = taps;
    mm.w = AddWeight(conv.theta_);
    MaybePrepack(mm, os);
    return dst;
  }
  Instr& mm = Emit(OpKind::kBatchMatMulW, s[1], os);
  mm.a = taps;
  mm.w = AddWeight(conv.theta_);
  MaybePrepack(mm, os);
  const int32_t dst = out >= 0 ? out : s[2];
  Instr& bias = Emit(OpKind::kAddBiasW, dst, os);
  bias.a = s[1];
  bias.w = AddWeight(conv.bias_);
  ODF_CHECK_EQ(plan_.weights_[static_cast<size_t>(bias.w)].rank(), 1);
  return dst;
}

int32_t PlanCompiler::EmitLinear(const nn::Linear& linear, int32_t x,
                                 int32_t out) {
  const BufShape xs = ShapeOf(x);
  ODF_CHECK_EQ(xs.tail.size(), 1u);  // rank-2 call sites only
  ODF_CHECK_EQ(xs.tail[0], linear.in_features_);
  const BufShape os{xs.mult, {linear.out_features_}};
  std::vector<int32_t>& s = Scratch(&linear);
  if (s.empty()) {
    s.push_back(NewBuf(os));  // 0: x · W
    s.push_back(NewBuf(os));  // 1: + bias (when no explicit out)
  }
  if (!linear.with_bias_) {
    const int32_t dst = out >= 0 ? out : s[0];
    Instr& mm = Emit(OpKind::kMatMulW, dst, os);
    mm.a = x;
    mm.w = AddWeight(linear.weight_);
    MaybePrepack(mm, os);
    return dst;
  }
  Instr& mm = Emit(OpKind::kMatMulW, s[0], os);
  mm.a = x;
  mm.w = AddWeight(linear.weight_);
  MaybePrepack(mm, os);
  const int32_t dst = out >= 0 ? out : s[1];
  Instr& bias = Emit(OpKind::kAddBiasW, dst, os);
  bias.a = s[0];
  bias.w = AddWeight(linear.bias_);
  ODF_CHECK_EQ(plan_.weights_[static_cast<size_t>(bias.w)].rank(), 1);
  return dst;
}

// Mirrors GcGruCell::Step — see nn/gcgru.cc for the op sequence.
void PlanCompiler::EmitGcGruStep(const nn::GcGruCell& cell, int32_t x,
                                 int32_t h) {
  const nn::GraphBasis& basis = *cell.basis_;
  const int64_t n = basis.nodes();
  const int64_t f = cell.input_features_;
  const int64_t hid = cell.hidden_features_;
  const BufShape hx_shape{1, {n, hid + f}};
  const BufShape gates_shape{1, {n, 2 * hid}};
  const BufShape h_shape{1, {n, hid}};
  std::vector<int32_t>& s = Scratch(&cell);
  if (s.empty()) {
    s.push_back(NewBuf(hx_shape));  // 0: [h, x] / [r ⊙ h, x]
    s.push_back(basis.taps() > 1 ? NewBuf({1, {n, basis.taps() * (hid + f)}})
                                 : -1);  // 1: gate taps
    s.push_back(NewBuf(gates_shape));  // 2: taps · theta
    s.push_back(NewBuf(gates_shape));  // 3: + bias
    s.push_back(NewBuf(h_shape));      // 4: reset / r ⊙ h
    s.push_back(NewBuf(h_shape));      // 5: update / (1 − u) ⊙ h̃
    s.push_back(NewBuf(h_shape));      // 6: candidate
    s.push_back(NewBuf(h_shape));      // 7: u ⊙ h
  }
  {
    Instr& cat = Emit(OpKind::kConcat2, s[0], hx_shape);
    cat.a = h;
    cat.b = x;
    cat.axis = 2;
  }
  const int32_t taps = EmitBasisTaps(basis, s[0], s[1]);
  {
    Instr& mm = Emit(OpKind::kBatchMatMulW, s[2], gates_shape);
    mm.a = taps;
    mm.w = AddWeight(cell.gates_theta_);
    MaybePrepack(mm, gates_shape);
  }
  {
    Instr& bias = Emit(OpKind::kAddBiasW, s[3], gates_shape);
    bias.a = s[2];
    bias.w = AddWeight(cell.gates_bias_);
    ODF_CHECK_EQ(plan_.weights_[static_cast<size_t>(bias.w)].rank(), 1);
  }
  {
    Instr& slice = Emit(OpKind::kSlice, s[4], h_shape);
    slice.a = s[3];
    slice.axis = 2;
    slice.start = 0;
    slice.len = hid;
  }
  Emit(OpKind::kSigmoid, s[4], h_shape).a = s[4];
  {
    Instr& slice = Emit(OpKind::kSlice, s[5], h_shape);
    slice.a = s[3];
    slice.axis = 2;
    slice.start = hid;
    slice.len = hid;
  }
  Emit(OpKind::kSigmoid, s[5], h_shape).a = s[5];
  {
    Instr& mul = Emit(OpKind::kMul, s[4], h_shape);  // r ⊙ h
    mul.a = s[4];
    mul.b = h;
  }
  {
    Instr& cat = Emit(OpKind::kConcat2, s[0], hx_shape);  // [r ⊙ h, x]
    cat.a = s[4];
    cat.b = x;
    cat.axis = 2;
  }
  EmitChebConv(cell.candidate_conv_, s[0], s[6]);
  Emit(OpKind::kTanh, s[6], h_shape).a = s[6];
  {
    Instr& mul = Emit(OpKind::kMul, s[7], h_shape);  // u ⊙ h
    mul.a = s[5];
    mul.b = h;
  }
  {
    Instr& neg = Emit(OpKind::kMulScalar, s[5], h_shape);
    neg.a = s[5];
    neg.scalar = -1.0f;
  }
  {
    Instr& one = Emit(OpKind::kAddScalar, s[5], h_shape);
    one.a = s[5];
    one.scalar = 1.0f;
  }
  {
    Instr& mul = Emit(OpKind::kMul, s[5], h_shape);  // (1 − u) ⊙ h̃
    mul.a = s[5];
    mul.b = s[6];
  }
  {
    Instr& add = Emit(OpKind::kAdd, h, h_shape);  // next state, in place
    add.a = s[7];
    add.b = s[5];
  }
}

// Mirrors GruCell::Step — see nn/gru.cc for the op sequence.
void PlanCompiler::EmitGruStep(const nn::GruCell& cell, int32_t x,
                               int32_t h) {
  const int64_t f = cell.input_size_;
  const int64_t hid = cell.hidden_size_;
  const BufShape hx_shape{1, {hid + f}};
  const BufShape h_shape{1, {hid}};
  std::vector<int32_t>& s = Scratch(&cell);
  if (s.empty()) {
    s.push_back(NewBuf(hx_shape));  // 0: [h, x] / [r ⊙ h, x]
    s.push_back(NewBuf(h_shape));   // 1: z ⊙ h
  }
  {
    Instr& cat = Emit(OpKind::kConcat2, s[0], hx_shape);
    cat.a = h;
    cat.b = x;
    cat.axis = 1;
  }
  const int32_t r = EmitLinear(cell.reset_gate_, s[0], -1);
  Emit(OpKind::kSigmoid, r, h_shape).a = r;
  const int32_t z = EmitLinear(cell.update_gate_, s[0], -1);
  Emit(OpKind::kSigmoid, z, h_shape).a = z;
  {
    Instr& mul = Emit(OpKind::kMul, r, h_shape);  // r ⊙ h
    mul.a = r;
    mul.b = h;
  }
  {
    Instr& cat = Emit(OpKind::kConcat2, s[0], hx_shape);  // [r ⊙ h, x]
    cat.a = r;
    cat.b = x;
    cat.axis = 1;
  }
  const int32_t cand = EmitLinear(cell.candidate_, s[0], -1);
  Emit(OpKind::kTanh, cand, h_shape).a = cand;
  {
    Instr& mul = Emit(OpKind::kMul, s[1], h_shape);  // z ⊙ h
    mul.a = z;
    mul.b = h;
  }
  {
    Instr& neg = Emit(OpKind::kMulScalar, z, h_shape);
    neg.a = z;
    neg.scalar = -1.0f;
  }
  {
    Instr& one = Emit(OpKind::kAddScalar, z, h_shape);
    one.a = z;
    one.scalar = 1.0f;
  }
  {
    Instr& mul = Emit(OpKind::kMul, z, h_shape);  // (1 − z) ⊙ h̃
    mul.a = z;
    mul.b = cand;
  }
  {
    Instr& add = Emit(OpKind::kAdd, h, h_shape);  // next state, in place
    add.a = s[1];
    add.b = z;
  }
}

// Mirrors LuongAttention::Scores + ::Apply — see nn/attention.cc.
int32_t PlanCompiler::EmitAttention(const nn::LuongAttention& attention,
                                    int32_t decoder,
                                    const std::vector<int32_t>& encoder_copies) {
  const int64_t hid = attention.hidden_size_;
  const int64_t steps = static_cast<int64_t>(encoder_copies.size());
  const BufShape h_shape{1, {hid}};
  const BufShape one_shape{1, {1}};
  const BufShape scores_shape{1, {steps}};
  std::vector<int32_t>& s = Scratch(&attention);
  // Layout: 0 transformed; 1..steps per-step scores; steps+1 scores;
  // steps+2 softmax weights; steps+3 context; steps+4 weighted state;
  // steps+5 [context, decoder].
  if (s.empty()) {
    s.push_back(NewBuf(h_shape));
    for (int64_t t = 0; t < steps; ++t) s.push_back(NewBuf(one_shape));
    s.push_back(NewBuf(scores_shape));
    s.push_back(NewBuf(scores_shape));
    s.push_back(NewBuf(h_shape));
    s.push_back(NewBuf(h_shape));
    s.push_back(NewBuf({1, {2 * hid}}));
  }
  const int32_t scores = s[static_cast<size_t>(steps) + 1];
  const int32_t weights = s[static_cast<size_t>(steps) + 2];
  const int32_t context = s[static_cast<size_t>(steps) + 3];
  const int32_t weighted = s[static_cast<size_t>(steps) + 4];
  const int32_t cat = s[static_cast<size_t>(steps) + 5];
  for (int64_t t = 0; t < steps; ++t) {
    EmitLinear(attention.score_, encoder_copies[static_cast<size_t>(t)],
               s[0]);  // W_a e_t (no bias)
    {
      Instr& mul = Emit(OpKind::kMul, s[0], h_shape);
      mul.a = decoder;
      mul.b = s[0];
    }
    Instr& sum = Emit(OpKind::kSumKeep, s[static_cast<size_t>(t) + 1],
                      one_shape);
    sum.a = s[0];
    sum.axis = 1;
  }
  {
    Instr& cat_scores = Emit(OpKind::kConcatN, scores, scores_shape);
    cat_scores.axis = 1;
    for (int64_t t = 0; t < steps; ++t) {
      cat_scores.srcs.push_back(s[static_cast<size_t>(t) + 1]);
    }
  }
  Emit(OpKind::kSoftmax, weights, scores_shape).a = scores;
  Emit(OpKind::kZero, context, h_shape);
  for (int64_t t = 0; t < steps; ++t) {
    {
      Instr& slice = Emit(OpKind::kSlice, s[static_cast<size_t>(t) + 1],
                          one_shape);
      slice.a = weights;
      slice.axis = 1;
      slice.start = t;
      slice.len = 1;
    }
    {
      Instr& mul = Emit(OpKind::kMul, weighted, h_shape);  // a_t e_t
      mul.a = encoder_copies[static_cast<size_t>(t)];
      mul.b = s[static_cast<size_t>(t) + 1];
    }
    {
      Instr& add = Emit(OpKind::kAdd, context, h_shape);
      add.a = context;
      add.b = weighted;
    }
  }
  {
    Instr& combine = Emit(OpKind::kConcat2, cat, BufShape{1, {2 * hid}});
    combine.a = context;
    combine.b = decoder;
    combine.axis = 1;
  }
  const int32_t head = EmitLinear(attention.combine_, cat, -1);
  Emit(OpKind::kTanh, head, h_shape).a = head;
  return head;
}

// Mirrors AdvancedFramework::ApplyBranch; result lands in `out` shaped
// [B·slices, β, K].
void PlanCompiler::EmitBranch(const AdvancedFramework& model,
                              const AdvancedFramework::FactorBranch& branch,
                              int32_t in, int32_t out) {
  const int64_t k = model.num_buckets_;
  if (branch.fc != nullptr) {
    const BufShape xs = ShapeOf(in);
    Reshape(in, {xs.mult, {xs.tail[0] * xs.tail[1]}});
    const int32_t lin = EmitLinear(*branch.fc, in, out);
    ODF_CHECK_EQ(lin, out);
    Emit(OpKind::kTanh, out, ShapeOf(out)).a = out;
    Reshape(out, {xs.mult, {branch.output_nodes, k}});
    return;
  }
  int32_t x = in;
  for (size_t level = 0; level < branch.convs.size(); ++level) {
    x = EmitChebConv(*branch.convs[level], x, -1);
    Emit(OpKind::kRelu, x, ShapeOf(x)).a = x;
    const BufShape xs = ShapeOf(x);
    const std::vector<std::vector<int64_t>>& clusters =
        branch.clusters[level];
    const BufShape pooled_shape{
        xs.mult, {static_cast<int64_t>(clusters.size()), xs.tail[1]}};
    int32_t dst = out;
    if (level + 1 < branch.convs.size()) {
      std::vector<int32_t>& s = Scratch(&clusters);
      if (s.empty()) s.push_back(NewBuf(pooled_shape));
      dst = s[0];
    }
    Instr& pool = Emit(OpKind::kGraphPool, dst, pooled_shape);
    pool.a = x;
    pool.clusters = &clusters;
    pool.pool = model.config_.pool_kind;
    x = dst;
  }
  ODF_CHECK_EQ(x, out);
}

PlanCompiler::SeqState PlanCompiler::EmitGcGruEncoder(
    const nn::Seq2SeqGcGru& seq, const std::vector<int32_t>& inputs) {
  SeqState state;
  const size_t layers = seq.encoder_layers_.size();
  for (size_t l = 0; l < layers; ++l) {
    const nn::GcGruCell& cell = *seq.encoder_layers_[l];
    const BufShape h_shape{1, {cell.num_nodes(), cell.hidden_features_}};
    const int32_t h = NewBuf(h_shape);
    Emit(OpKind::kZero, h, h_shape);
    state.states.push_back(h);
  }
  for (int32_t x : inputs) {
    int32_t layer_input = x;
    for (size_t l = 0; l < layers; ++l) {
      EmitGcGruStep(*seq.encoder_layers_[l], layer_input, state.states[l]);
      layer_input = state.states[l];
    }
  }
  state.last_input = inputs.back();
  return state;
}

std::vector<int32_t> PlanCompiler::EmitGcGruDecoder(
    const nn::Seq2SeqGcGru& seq, const SeqState& state, int64_t horizon) {
  // The decoder starts from the encoder's final states; the tape copies the
  // state Vars, the plan simply keeps using the same buffers.
  const size_t layers = seq.decoder_layers_.size();
  const nn::ChebConv& head = *seq.output_head_;
  std::vector<int32_t> outputs;
  int32_t prev = state.last_input;
  for (int64_t j = 0; j < horizon; ++j) {
    int32_t layer_input = prev;
    for (size_t l = 0; l < layers; ++l) {
      EmitGcGruStep(*seq.decoder_layers_[l], layer_input, state.states[l]);
      layer_input = state.states[l];
    }
    const int32_t out =
        NewBuf({1, {head.num_nodes(), head.out_features_}});
    EmitChebConv(head, state.states.back(), out);
    outputs.push_back(out);
    prev = out;
  }
  return outputs;
}

PlanCompiler::SeqState PlanCompiler::EmitGruEncoder(
    const nn::Seq2SeqGru& seq, const std::vector<int32_t>& inputs) {
  SeqState state;
  const size_t layers = seq.encoder_layers_.size();
  for (size_t l = 0; l < layers; ++l) {
    const BufShape h_shape{1, {seq.encoder_layers_[l]->hidden_size_}};
    const int32_t h = NewBuf(h_shape);
    Emit(OpKind::kZero, h, h_shape);
    state.states.push_back(h);
  }
  const bool attended = seq.attention_ != nullptr;
  for (int32_t x : inputs) {
    int32_t layer_input = x;
    for (size_t l = 0; l < layers; ++l) {
      EmitGruStep(*seq.encoder_layers_[l], layer_input, state.states[l]);
      layer_input = state.states[l];
    }
    if (attended) {
      // Attention reads every step's top-layer state later; the state
      // buffer is overwritten each step, so keep a per-step copy.
      const BufShape h_shape{1, {seq.hidden_size_}};
      const int32_t copy = NewBuf(h_shape);
      Emit(OpKind::kCopy, copy, h_shape).a = state.states.back();
      state.encoder_copies.push_back(copy);
    }
  }
  state.last_input = inputs.back();
  return state;
}

std::vector<int32_t> PlanCompiler::EmitGruDecoder(const nn::Seq2SeqGru& seq,
                                                  const SeqState& state,
                                                  int64_t horizon) {
  const size_t layers = seq.decoder_layers_.size();
  std::vector<int32_t> outputs;
  int32_t prev = state.last_input;
  for (int64_t j = 0; j < horizon; ++j) {
    int32_t layer_input = prev;
    for (size_t l = 0; l < layers; ++l) {
      EmitGruStep(*seq.decoder_layers_[l], layer_input, state.states[l]);
      layer_input = state.states[l];
    }
    const int32_t head =
        seq.attention_ != nullptr
            ? EmitAttention(*seq.attention_, state.states.back(),
                            state.encoder_copies)
            : state.states.back();
    const int32_t out = NewBuf({1, {seq.feature_size_}});
    EmitLinear(*seq.output_proj_, head, out);
    outputs.push_back(out);
    prev = out;
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// PlanCompiler: whole-model schedules
// ---------------------------------------------------------------------------

ForwardPlan PlanCompiler::Compile(const AdvancedFramework& model,
                                  int64_t history, Precision precision) {
  ODF_CHECK_GT(history, 0);
  PlanCompiler c;
  ForwardPlan& p = c.plan_;
  const int64_t n = model.num_origins_;
  const int64_t m = model.num_destinations_;
  const int64_t k = model.num_buckets_;
  const int64_t beta = model.rank_;
  p.history_ = history;
  p.input_tail_ = {n, m, k};

  // Mirrors AdvancedFramework::Run at inference (train=false: dropout is
  // the identity and never reaches the tape). The branches are stateless
  // per time step, so the plan stacks all `history` input slices along the
  // batch-slice axis and evaluates each branch ONCE at `history`× batch —
  // two branch evaluations total instead of 2·history, amortizing every
  // kernel launch. Each stacked slice accumulates exactly the sums its
  // per-step evaluation would, so the split-back sequence is bit-identical
  // to the per-step schedule.
  c.BeginPhase("factorize");
  const int32_t in_c = c.NewBuf({1, {m, n, k}});
  const int32_t big_r = c.NewBuf({history * n, {m, k}});
  const int32_t big_c = c.NewBuf({history * m, {n, k}});
  const int32_t big_rt = c.NewBuf({history * n, {beta, k}});
  const int32_t big_ct = c.NewBuf({history * m, {beta, k}});
  for (int64_t t = 0; t < history; ++t) {
    // R branch input: origin slices [B·N, N', K] on the destination graph,
    // stacked at block t.
    Instr& load = c.Emit(OpKind::kLoadInput, big_r, {history * n, {m, k}});
    load.input_index = static_cast<int32_t>(t);
    load.start = t * n * m * k;
    // C branch input: destination slices [B·N', N, K] on the origin graph.
    Instr& pload = c.Emit(OpKind::kLoadInputPermuted, in_c, {1, {m, n, k}});
    pload.input_index = static_cast<int32_t>(t);
    pload.perm = {0, 2, 1, 3};
    Instr& stack = c.Emit(OpKind::kStackRows, big_c, {history * m, {n, k}});
    stack.a = in_c;
    stack.start = t * m * n * k;
  }
  c.EmitBranch(model, model.r_branch_, big_r, big_rt);
  c.EmitBranch(model, model.c_branch_, big_c, big_ct);
  std::vector<int32_t> r_seq;
  std::vector<int32_t> c_seq;
  for (int64_t t = 0; t < history; ++t) {
    const int32_t rt = c.NewBuf({n, {beta, k}});
    Instr& rslice = c.Emit(OpKind::kSliceRows, rt, {n, {beta, k}});
    rslice.a = big_rt;
    rslice.start = t * n * beta * k;
    c.Reshape(rt, model.config_.use_gcgru
                      ? BufShape{1, {n, beta * k}}
                      : BufShape{1, {n * beta * k}});
    r_seq.push_back(rt);
    const int32_t ct = c.NewBuf({m, {beta, k}});
    Instr& cslice = c.Emit(OpKind::kSliceRows, ct, {m, {beta, k}});
    cslice.a = big_ct;
    cslice.start = t * m * beta * k;
    c.Reshape(ct, model.config_.use_gcgru
                      ? BufShape{1, {m, beta * k}}
                      : BufShape{1, {m * beta * k}});
    c_seq.push_back(ct);
  }

  std::vector<int32_t> r_outs;
  std::vector<int32_t> c_outs;
  if (model.config_.use_gcgru) {
    c.BeginPhase("encode");
    const SeqState r_state = c.EmitGcGruEncoder(*model.r_seq_gc_, r_seq);
    const SeqState c_state = c.EmitGcGruEncoder(*model.c_seq_gc_, c_seq);
    c.BeginPhase("decode");
    r_outs = c.EmitGcGruDecoder(*model.r_seq_gc_, r_state, model.horizon_);
    c_outs = c.EmitGcGruDecoder(*model.c_seq_gc_, c_state, model.horizon_);
  } else {
    c.BeginPhase("encode");
    const SeqState r_state = c.EmitGruEncoder(*model.r_seq_fc_, r_seq);
    const SeqState c_state = c.EmitGruEncoder(*model.c_seq_fc_, c_seq);
    c.BeginPhase("decode");
    r_outs = c.EmitGruDecoder(*model.r_seq_fc_, r_state, model.horizon_);
    c_outs = c.EmitGruDecoder(*model.c_seq_fc_, c_state, model.horizon_);
  }

  c.BeginPhase("recover");
  const int32_t c_perm = c.NewBuf({1, {beta, m, k}});
  const int32_t temperature = c.AddWeight(model.temperature_);
  for (int64_t j = 0; j < model.horizon_; ++j) {
    const int32_t rj = r_outs[static_cast<size_t>(j)];
    const int32_t cj = c_outs[static_cast<size_t>(j)];
    c.Reshape(rj, {1, {n, beta, k}});
    c.Reshape(cj, {1, {m, beta, k}});
    {
      Instr& perm = c.Emit(OpKind::kPermute, c_perm, {1, {beta, m, k}});
      perm.a = cj;
      perm.perm = {0, 2, 1, 3};
    }
    const int32_t pred = c.NewBuf({1, {n, m, k}});
    Instr& recover = c.Emit(OpKind::kRecover, pred, {1, {n, m, k}});
    recover.a = rj;
    recover.b = c_perm;
    recover.w = temperature;
    p.outputs_.push_back(pred);
  }
  p.phases_.back().end = p.instrs_.size();
  if (precision == Precision::kFp64) p.LowerToFp64();
  return std::move(c.plan_);
}

ForwardPlan PlanCompiler::Compile(const BasicFramework& model,
                                  int64_t history, Precision precision) {
  ODF_CHECK_GT(history, 0);
  PlanCompiler c;
  ForwardPlan& p = c.plan_;
  const int64_t n = model.num_origins_;
  const int64_t m = model.num_destinations_;
  const int64_t k = model.num_buckets_;
  const int64_t beta = model.config_.rank;
  const int64_t encode = model.config_.encode_dim;
  p.history_ = history;
  p.input_tail_ = {n, m, k};

  // Mirrors BasicFramework::Run at inference.
  c.BeginPhase("factorize");
  const int32_t in = c.NewBuf({1, {n * m * k}});
  std::vector<int32_t> r_seq;
  std::vector<int32_t> c_seq;
  for (int64_t t = 0; t < history; ++t) {
    c.Emit(OpKind::kLoadInput, in, {1, {n * m * k}}).input_index =
        static_cast<int32_t>(t);
    const int32_t re = c.NewBuf({1, {encode}});
    c.EmitLinear(model.encode_r_, in, re);
    c.Emit(OpKind::kTanh, re, {1, {encode}}).a = re;
    r_seq.push_back(re);
    const int32_t ce = c.NewBuf({1, {encode}});
    c.EmitLinear(model.encode_c_, in, ce);
    c.Emit(OpKind::kTanh, ce, {1, {encode}}).a = ce;
    c_seq.push_back(ce);
  }

  c.BeginPhase("encode");
  const SeqState r_state = c.EmitGruEncoder(model.seq_r_, r_seq);
  const SeqState c_state = c.EmitGruEncoder(model.seq_c_, c_seq);
  c.BeginPhase("decode");
  const std::vector<int32_t> r_outs =
      c.EmitGruDecoder(model.seq_r_, r_state, model.horizon_);
  const std::vector<int32_t> c_outs =
      c.EmitGruDecoder(model.seq_c_, c_state, model.horizon_);

  c.BeginPhase("recover");
  const int32_t temperature = c.AddWeight(model.temperature_);
  for (int64_t j = 0; j < model.horizon_; ++j) {
    const int32_t fr =
        c.EmitLinear(model.factor_r_, r_outs[static_cast<size_t>(j)], -1);
    c.Reshape(fr, {1, {n, beta, k}});
    const int32_t fc =
        c.EmitLinear(model.factor_c_, c_outs[static_cast<size_t>(j)], -1);
    c.Reshape(fc, {1, {beta, m, k}});
    const int32_t pred = c.NewBuf({1, {n, m, k}});
    Instr& recover = c.Emit(OpKind::kRecover, pred, {1, {n, m, k}});
    recover.a = fr;
    recover.b = fc;
    recover.w = temperature;
    p.outputs_.push_back(pred);
  }
  p.phases_.back().end = p.instrs_.size();
  if (precision == Precision::kFp64) p.LowerToFp64();
  return std::move(c.plan_);
}

}  // namespace odf::serve
